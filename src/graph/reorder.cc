#include "graph/reorder.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace gal {
namespace {

/// Stable degree-descending order: hubs get the smallest internal ids,
/// ties broken by original id so the permutation is deterministic.
std::vector<VertexId> DegreeDescOrder(VertexId n,
                                      std::span<const uint32_t> degree) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  return order;
}

/// Hub threshold: a vertex is a hub when its degree clears 4x the mean
/// (and at least 8) — the knee past which power-law tails start; on
/// uniform-degree graphs nothing qualifies and the mode degenerates to
/// the identity placement for the non-hub block.
uint32_t HubThreshold(VertexId n, std::span<const uint32_t> degree) {
  uint64_t total = 0;
  for (uint32_t d : degree) total += d;
  const uint64_t mean = n == 0 ? 0 : (total + n - 1) / n;
  return static_cast<uint32_t>(std::max<uint64_t>(8, 4 * mean));
}

std::vector<VertexId> HubClusterOrder(VertexId n,
                                      std::span<const uint32_t> degree,
                                      std::span<const Edge> directed_edges) {
  const uint32_t threshold = HubThreshold(n, degree);
  std::vector<uint8_t> is_hub(n, 0);
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < n; ++v) {
    if (degree[v] >= threshold) {
      is_hub[v] = 1;
      hubs.push_back(v);
    }
  }
  std::stable_sort(hubs.begin(), hubs.end(), [&](VertexId a, VertexId b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  std::vector<uint32_t> hub_pos(n, UINT32_MAX);
  for (uint32_t i = 0; i < hubs.size(); ++i) hub_pos[hubs[i]] = i;

  // Anchor of a non-hub: its highest-degree hub neighbor (ties to the
  // smaller id). One pass over the sorted edge list finds it.
  std::vector<VertexId> anchor(n, kInvalidVertex);
  for (const Edge& e : directed_edges) {
    if (is_hub[e.src] || !is_hub[e.dst]) continue;
    VertexId& a = anchor[e.src];
    if (a == kInvalidVertex || degree[e.dst] > degree[a] ||
        (degree[e.dst] == degree[a] && e.dst < a)) {
      a = e.dst;
    }
  }

  // Placement: hubs first, then anchored non-hubs grouped behind their
  // anchor's position (original id within a group), then the rest in
  // original order.
  std::vector<VertexId> order = hubs;
  order.reserve(n);
  std::vector<VertexId> anchored;
  std::vector<VertexId> loose;
  for (VertexId v = 0; v < n; ++v) {
    if (is_hub[v]) continue;
    (anchor[v] != kInvalidVertex ? anchored : loose).push_back(v);
  }
  std::stable_sort(anchored.begin(), anchored.end(),
                   [&](VertexId a, VertexId b) {
                     const uint32_t pa = hub_pos[anchor[a]];
                     const uint32_t pb = hub_pos[anchor[b]];
                     return pa != pb ? pa < pb : a < b;
                   });
  order.insert(order.end(), anchored.begin(), anchored.end());
  order.insert(order.end(), loose.begin(), loose.end());
  return order;
}

}  // namespace

std::vector<VertexId> ComputeReorderPermutation(
    ReorderMode mode, VertexId num_vertices, std::span<const uint32_t> degree,
    std::span<const Edge> directed_edges) {
  GAL_CHECK(degree.size() == num_vertices);
  std::vector<VertexId> order;
  switch (mode) {
    case ReorderMode::kNone:
      order.resize(num_vertices);
      std::iota(order.begin(), order.end(), VertexId{0});
      break;
    case ReorderMode::kDegreeDesc:
      order = DegreeDescOrder(num_vertices, degree);
      break;
    case ReorderMode::kHubCluster:
      order = HubClusterOrder(num_vertices, degree, directed_edges);
      break;
  }
  // order[i] = original vertex placed at internal position i; invert.
  std::vector<VertexId> to_internal(num_vertices);
  for (VertexId i = 0; i < num_vertices; ++i) to_internal[order[i]] = i;
  return to_internal;
}

}  // namespace gal
