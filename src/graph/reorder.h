#ifndef GAL_GRAPH_REORDER_H_
#define GAL_GRAPH_REORDER_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Computes the build-time vertex permutation for `mode` (see
/// ReorderMode in graph.h). Returns to_internal: original id ->
/// internal id. Deterministic in its inputs.
///
/// `degree` is the out-degree of every original vertex (== undirected
/// degree for symmetrized edge lists); `directed_edges` is the full
/// deduplicated adjacency as (src, dst) pairs sorted by (src, dst) —
/// exactly the list Graph::FromEdges builds the CSR from. Hub-cluster
/// placement scans it once to find each vertex's strongest neighbor.
std::vector<VertexId> ComputeReorderPermutation(
    ReorderMode mode, VertexId num_vertices, std::span<const uint32_t> degree,
    std::span<const Edge> directed_edges);

}  // namespace gal

#endif  // GAL_GRAPH_REORDER_H_
