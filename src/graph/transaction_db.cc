#include "graph/transaction_db.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace gal {
namespace {

/// Builds one random connected labeled graph: a random spanning tree plus
/// `extra_edges` random chords, then (maybe) a planted motif.
GraphTransaction MakeMolecule(const MoleculeDbOptions& options,
                              int32_t class_label, Rng& rng) {
  const VertexId n = options.vertices_per_graph;
  std::vector<Edge> edges;
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = static_cast<Label>(rng.Uniform(options.num_vertex_labels));
  }
  // Random spanning tree: attach v to a uniform earlier vertex.
  for (VertexId v = 1; v < n; ++v) {
    edges.push_back({static_cast<VertexId>(rng.Uniform(v)), v});
  }
  for (uint32_t e = 0; e < options.extra_edges; ++e) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u != v) edges.push_back({std::min(u, v), std::max(u, v)});
  }

  if (rng.Bernoulli(options.motif_rate) && n >= 4) {
    // Plant the class motif on vertices 0..3 with fixed labels, making
    // it frequent within the class and discriminative across classes.
    labels[0] = 0;
    labels[1] = 1;
    labels[2] = 2;
    if (class_label == 0) {
      // Triangle 0-1-2 with labels (0,1,2).
      edges.push_back({0, 1});
      edges.push_back({1, 2});
      edges.push_back({0, 2});
    } else {
      // Square 0-1-3-2 with labels (0,1,2,3).
      labels[3] = 3;
      edges.push_back({0, 1});
      edges.push_back({1, 3});
      edges.push_back({3, 2});
      edges.push_back({2, 0});
    }
  }

  Result<Graph> g = Graph::FromEdges(n, std::move(edges), GraphOptions{});
  GAL_CHECK(g.ok()) << g.status();
  Graph graph = std::move(g.value());
  GAL_CHECK_OK(graph.SetLabels(std::move(labels)));
  return {std::move(graph), class_label};
}

}  // namespace

TransactionDb SyntheticMoleculeDb(const MoleculeDbOptions& options,
                                  uint64_t seed) {
  GAL_CHECK(options.vertices_per_graph >= 4);
  GAL_CHECK(options.num_vertex_labels >= 4);
  Rng rng(seed);
  TransactionDb db;
  for (uint32_t i = 0; i < options.num_transactions; ++i) {
    const int32_t cls = static_cast<int32_t>(i % 2);
    GraphTransaction t = MakeMolecule(options, cls, rng);
    db.Add(std::move(t.graph), t.class_label);
  }
  return db;
}

}  // namespace gal
