#ifndef GAL_GRAPH_COMPRESSED_CSR_H_
#define GAL_GRAPH_COMPRESSED_CSR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gal {

/// Delta + varint compressed adjacency (GraphOptions::compression ==
/// CompressionMode::kDeltaVarint): each vertex's sorted neighbor list is
/// stored as one byte block — the first target as a plain varint, every
/// later target as a varint-encoded gap from its predecessor. Sorted
/// adjacency makes the gaps small; cache-aware reordering (hub-cluster)
/// makes them smaller still, so the two layout knobs compose: the same
/// policy that keeps a hub's fringe in one cache window also shrinks its
/// encoded deltas. The raw `targets_` array is dropped when this
/// representation is active — traversals stream straight off the byte
/// blocks, trading decode cycles for memory bandwidth (the G-thinker
/// compact-adjacency trade the survey highlights).
///
/// Varints are LEB128: 7 payload bits per byte, high bit = continuation.
/// Gaps of strictly-ascending rows (every deduped build) are encoded
/// minus one (`delta_bias` = 1) so a run of consecutive ids costs one
/// zero byte per edge; non-deduped builds may hold equal neighbors and
/// encode the raw gap (`delta_bias` = 0).
struct CompressedCsr {
  std::vector<uint8_t> bytes;         // concatenated per-vertex blocks
  std::vector<uint64_t> row_offsets;  // |V|+1 byte offsets into `bytes`
  uint32_t delta_bias = 0;            // added back to every decoded gap

  size_t MemoryBytes() const {
    return bytes.size() * sizeof(uint8_t) +
           row_offsets.size() * sizeof(uint64_t);
  }
};

/// Appends `value` to `out` as a LEB128 varint (1 byte below 128, at
/// most 5 bytes for a full uint32).
inline void AppendVarint(std::vector<uint8_t>& out, uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

/// Reads one LEB128 varint and advances `p` past it. The caller bounds
/// the stream by element count (the CSR degree), never by byte scanning.
inline uint32_t ReadVarint(const uint8_t*& p) {
  uint32_t value = *p & 0x7f;
  uint32_t shift = 7;
  while (*p & 0x80) {
    ++p;
    value |= static_cast<uint32_t>(*p & 0x7f) << shift;
    shift += 7;
  }
  ++p;
  return value;
}

/// Decodes one adjacency block of `degree` entries into `out` (which
/// must have room for `degree` ids). `bias` is CompressedCsr::delta_bias.
inline void DecodeAdjacencyBlock(const uint8_t* p, uint32_t degree,
                                 uint32_t bias, uint32_t* out) {
  if (degree == 0) return;
  uint32_t current = ReadVarint(p);
  out[0] = current;
  for (uint32_t i = 1; i < degree; ++i) {
    current += ReadVarint(p) + bias;
    out[i] = current;
  }
}

/// Encodes a CSR (offsets/targets in the usual layout) as per-vertex
/// delta-varint blocks. `strictly_ascending` promises every row has no
/// repeated neighbor (true for deduped builds) and enables the gap-minus-
/// one encoding.
CompressedCsr EncodeDeltaVarint(const std::vector<uint64_t>& offsets,
                                const std::vector<uint32_t>& targets,
                                bool strictly_ascending);

}  // namespace gal

#endif  // GAL_GRAPH_COMPRESSED_CSR_H_
