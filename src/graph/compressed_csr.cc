#include "graph/compressed_csr.h"

#include "common/logging.h"

namespace gal {

CompressedCsr EncodeDeltaVarint(const std::vector<uint64_t>& offsets,
                                const std::vector<uint32_t>& targets,
                                bool strictly_ascending) {
  CompressedCsr out;
  out.delta_bias = strictly_ascending ? 1 : 0;
  const size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  out.row_offsets.resize(n + 1, 0);
  // Sorted rows with small gaps mostly take 1 byte/edge; reserve for
  // that common case and let outliers grow the vector.
  out.bytes.reserve(targets.size() + targets.size() / 4);
  for (size_t v = 0; v < n; ++v) {
    out.row_offsets[v] = out.bytes.size();
    uint32_t prev = 0;
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const uint32_t t = targets[e];
      if (e == offsets[v]) {
        AppendVarint(out.bytes, t);
      } else {
        GAL_CHECK(t >= prev + out.delta_bias)
            << "adjacency row not sorted" << (strictly_ascending ? "/deduped" : "")
            << " at vertex " << v;
        AppendVarint(out.bytes, t - prev - out.delta_bias);
      }
      prev = t;
    }
  }
  out.row_offsets[n] = out.bytes.size();
  out.bytes.shrink_to_fit();
  return out;
}

}  // namespace gal
