#include "graph/intersect.h"

#include <algorithm>
#include <bit>

#include "common/simd.h"

namespace gal {
namespace {

/// One side this many times longer than the other -> gallop instead of
/// merging (merge is O(na+nb); gallop is O(na log nb) for na << nb).
constexpr size_t kGallopRatio = 32;

uint64_t MergeCount(std::span<const VertexId> a, std::span<const VertexId> b,
                    uint64_t* ops) {
  uint64_t count = 0;
  uint64_t work = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++work;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  if (ops != nullptr) *ops += work;
  return count;
}

size_t MergeInto(std::span<const VertexId> a, std::span<const VertexId> b,
                 VertexId* out, uint64_t* ops) {
  uint64_t work = 0;
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    ++work;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out[count++] = a[i];
      ++i;
      ++j;
    }
  }
  if (ops != nullptr) *ops += work;
  return count;
}

/// Galloping intersection: for each element of the short side, find it
/// in the long side by exponential search from the previous position
/// (both sides ascending, so the cursor only moves forward). `emit` is
/// called per common element; returns the number of matches.
template <typename Emit>
uint64_t Gallop(std::span<const VertexId> small_side,
                std::span<const VertexId> large_side, uint64_t* ops,
                Emit&& emit) {
  uint64_t count = 0;
  uint64_t work = 0;
  size_t pos = 0;  // invariant: large_side[0..pos) < current x
  for (const VertexId x : small_side) {
    size_t bound = 1;
    while (pos + bound < large_side.size() && large_side[pos + bound] < x) {
      bound <<= 1;
      ++work;
    }
    const size_t lo = pos + bound / 2;
    const size_t hi = std::min(pos + bound, large_side.size());
    pos = static_cast<size_t>(
        std::lower_bound(large_side.begin() + lo, large_side.begin() + hi, x) -
        large_side.begin());
    work += std::bit_width(hi - lo);
    if (pos < large_side.size() && large_side[pos] == x) {
      ++count;
      emit(x);
      ++pos;
    }
    if (pos >= large_side.size()) break;
  }
  if (ops != nullptr) *ops += work;
  return count;
}

bool PreferGallop(size_t na, size_t nb) {
  return na * kGallopRatio < nb || nb * kGallopRatio < na;
}

}  // namespace

uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b, uint64_t* ops) {
  if (!simd::Enabled()) return MergeCount(a, b, ops);
  if (PreferGallop(a.size(), b.size())) {
    if (a.size() > b.size()) std::swap(a, b);
    return Gallop(a, b, ops, [](VertexId) {});
  }
  if (ops != nullptr) *ops += a.size() + b.size();
  return simd::IntersectCountU32(a.data(), a.size(), b.data(), b.size());
}

void IntersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
                   std::vector<VertexId>& out, uint64_t* ops) {
  out.resize(std::min(a.size(), b.size()));
  size_t count;
  if (!simd::Enabled()) {
    count = MergeInto(a, b, out.data(), ops);
  } else if (PreferGallop(a.size(), b.size())) {
    // Gallop emits the short side's matches, which are the common
    // elements regardless of which side is which.
    std::span<const VertexId> s = a.size() <= b.size() ? a : b;
    std::span<const VertexId> l = a.size() <= b.size() ? b : a;
    VertexId* dst = out.data();
    count = Gallop(s, l, ops, [&dst](VertexId x) { *dst++ = x; });
  } else {
    if (ops != nullptr) *ops += a.size() + b.size();
    count = simd::IntersectIntoU32(a.data(), a.size(), b.data(), b.size(),
                                   out.data());
  }
  out.resize(count);
}

std::vector<VertexId> Intersect(std::span<const VertexId> a,
                                std::span<const VertexId> b) {
  std::vector<VertexId> out;
  IntersectInto(a, b, out);
  return out;
}

bool IntersectAny(std::span<const VertexId> a, std::span<const VertexId> b) {
  // Gallop when lopsided (candidate-set vs hub-adjacency probes),
  // otherwise an early-exit merge. Purely existential, so no SIMD
  // variant is needed for parity — every path stops at the first hit.
  if (PreferGallop(a.size(), b.size())) {
    if (a.size() > b.size()) std::swap(a, b);
    size_t pos = 0;
    for (const VertexId x : a) {
      size_t bound = 1;
      while (pos + bound < b.size() && b[pos + bound] < x) bound <<= 1;
      pos = static_cast<size_t>(
          std::lower_bound(b.begin() + pos + bound / 2,
                           b.begin() + std::min(pos + bound, b.size()), x) -
          b.begin());
      if (pos < b.size() && b[pos] == x) return true;
      if (pos >= b.size()) return false;
    }
    return false;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

uint64_t IntersectCount(const Graph& g, VertexId u, VertexId v,
                        NeighborScratch& scratch, uint64_t* ops) {
  return IntersectCount(g.NeighborsInto(u, scratch.a),
                        g.NeighborsInto(v, scratch.b), ops);
}

uint64_t IntersectCount(std::span<const VertexId> a, const Graph& g,
                        VertexId v, NeighborScratch& scratch, uint64_t* ops) {
  return IntersectCount(a, g.NeighborsInto(v, scratch.b), ops);
}

void IntersectInto(std::span<const VertexId> a, const Graph& g, VertexId v,
                   std::vector<VertexId>& out, NeighborScratch& scratch,
                   uint64_t* ops) {
  IntersectInto(a, g.NeighborsInto(v, scratch.b), out, ops);
}

bool IntersectAny(std::span<const VertexId> a, const Graph& g, VertexId v,
                  NeighborScratch& scratch) {
  return IntersectAny(a, g.NeighborsInto(v, scratch.b));
}

}  // namespace gal
