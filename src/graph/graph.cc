#include "graph/graph.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "graph/reorder.h"

namespace gal {

CompressionMode ResolveCompressionMode(CompressionMode requested) {
  const char* env = std::getenv("GAL_GRAPH_COMPRESSION");
  if (env == nullptr || *env == '\0') return requested;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "none") == 0 ||
      std::strcmp(env, "off") == 0) {
    return CompressionMode::kNone;
  }
  // Any other value ("1", "delta-varint", ...) forces compression on.
  return CompressionMode::kDeltaVarint;
}

Result<Graph> Graph::FromEdges(VertexId num_vertices, std::vector<Edge> edges,
                               const GraphOptions& options) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument(
          "edge endpoint out of range: " + std::to_string(e.src) + "->" +
          std::to_string(e.dst) + " with |V|=" + std::to_string(num_vertices));
    }
  }

  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }

  // Materialize both directions for undirected graphs.
  std::vector<Edge> directed_edges;
  directed_edges.reserve(options.directed ? edges.size() : edges.size() * 2);
  for (const Edge& e : edges) {
    directed_edges.push_back(e);
    if (!options.directed) directed_edges.push_back({e.dst, e.src});
  }

  std::sort(directed_edges.begin(), directed_edges.end());
  if (options.dedup) {
    directed_edges.erase(
        std::unique(directed_edges.begin(), directed_edges.end()),
        directed_edges.end());
  }

  Graph g;
  if (options.reorder != ReorderMode::kNone && num_vertices > 0) {
    std::vector<uint32_t> degree(num_vertices, 0);
    for (const Edge& e : directed_edges) ++degree[e.src];
    std::vector<VertexId> to_internal = ComputeReorderPermutation(
        options.reorder, num_vertices, degree, directed_edges);
    for (Edge& e : directed_edges) {
      e.src = to_internal[e.src];
      e.dst = to_internal[e.dst];
    }
    std::sort(directed_edges.begin(), directed_edges.end());
    std::vector<VertexId> inv(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) inv[to_internal[v]] = v;
    g.reorder_mode_ = options.reorder;
    g.to_internal_ =
        std::make_shared<const std::vector<VertexId>>(std::move(to_internal));
    g.to_original_ =
        std::make_shared<const std::vector<VertexId>>(std::move(inv));
  }
  g.num_vertices_ = num_vertices;
  g.directed_ = options.directed;
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  g.targets_.reserve(directed_edges.size());
  for (const Edge& e : directed_edges) {
    ++g.offsets_[e.src + 1];
    g.targets_.push_back(e.dst);
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.num_edges_ = options.directed ? directed_edges.size()
                                  : directed_edges.size() / 2;
  if (ResolveCompressionMode(options.compression) ==
      CompressionMode::kDeltaVarint) {
    // Encode after reordering so hub-cluster layouts shrink the deltas,
    // then drop the raw array — the whole point is the footprint.
    g.compression_mode_ = CompressionMode::kDeltaVarint;
    g.compressed_ = std::make_shared<const CompressedCsr>(
        EncodeDeltaVarint(g.offsets_, g.targets_, options.dedup));
    g.targets_.clear();
    g.targets_.shrink_to_fit();
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (compressed_ != nullptr) {
    // Stream the block with an early exit on the sorted order. For the
    // probe-heavy callers (ColorBound, FSM) this is O(d) instead of
    // O(log d), but those all sit behind intersect.h scratch paths now;
    // the remaining HasEdge uses are cold.
    for (NeighborCursor c = OutNeighbors(u); c.Valid(); c.Next()) {
      if (c.Get() >= v) return c.Get() == v;
    }
    return false;
  }
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::span<const VertexId> Graph::NeighborsInto(
    VertexId v, std::vector<VertexId>& scratch) const {
  if (compressed_ == nullptr) return Neighbors(v);
  const uint32_t degree = Degree(v);
  scratch.resize(degree);
  DecodeAdjacencyBlock(compressed_->bytes.data() + compressed_->row_offsets[v],
                       degree, compressed_->delta_bias, scratch.data());
  return {scratch.data(), degree};
}

uint32_t Graph::MaxDegree() const {
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

Status Graph::SetLabels(std::vector<Label> labels) {
  if (labels.size() != num_vertices_) {
    return Status::InvalidArgument(
        "labels.size()=" + std::to_string(labels.size()) +
        " != |V|=" + std::to_string(num_vertices_));
  }
  if (IsReordered()) {
    // Callers label vertices in their own (original) id space; store
    // under the internal layout so LabelOf(internal) is direct.
    std::vector<Label> internal(labels.size());
    for (VertexId v = 0; v < num_vertices_; ++v) {
      internal[v] = labels[OriginalId(v)];
    }
    labels = std::move(internal);
  }
  labels_ = std::move(labels);
  return Status::Ok();
}

Graph Graph::Reversed() const {
  std::vector<Edge> reversed;
  reversed.reserve(NumAdjacencyEntries());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    ForEachOutNeighbor(v, [&](VertexId u) { reversed.push_back({u, v}); });
  }
  GraphOptions options;
  options.directed = directed_;
  options.remove_self_loops = false;
  options.dedup = false;
  options.compression = compression_mode_;
  // For undirected graphs FromEdges would double the (already symmetric)
  // list, so dedup instead.
  if (!directed_) options.dedup = true;
  Result<Graph> g = FromEdges(num_vertices_, std::move(reversed), options);
  GAL_CHECK(g.ok()) << g.status();
  Graph out = std::move(g.value());
  out.labels_ = labels_;
  // The reversed view lives in the same internal id space (the edges
  // above were emitted with internal endpoints), so it shares the maps.
  out.reorder_mode_ = reorder_mode_;
  out.to_original_ = to_original_;
  out.to_internal_ = to_internal_;
  return out;
}

const Graph& Graph::ReversedView() const {
  if (!directed_) return *this;
  std::lock_guard<std::mutex> lock(views_->mu);
  if (!views_->reversed) {
    views_->reversed = std::make_shared<const Graph>(Reversed());
  }
  return *views_->reversed;
}

const Graph& Graph::UndirectedView() const {
  if (!directed_) return *this;
  std::lock_guard<std::mutex> lock(views_->mu);
  if (!views_->undirected) {
    GraphOptions options;  // directed=false symmetrizes and dedups
    options.compression = compression_mode_;
    Result<Graph> sym = FromEdges(num_vertices_, CollectEdges(), options);
    GAL_CHECK(sym.ok()) << sym.status();
    Graph out = std::move(sym.value());
    out.labels_ = labels_;
    // Same internal id space as this graph; share the reorder maps.
    out.reorder_mode_ = reorder_mode_;
    out.to_original_ = to_original_;
    out.to_internal_ = to_internal_;
    views_->undirected = std::make_shared<const Graph>(std::move(out));
  }
  return *views_->undirected;
}

Result<Graph> Graph::InducedSubgraph(std::span<const VertexId> vertices) const {
  // `vertices` are original ids (the repo-wide API convention). Before
  // the reorder fix this method read them as internal-layout ids and
  // indexed labels_ (internal-indexed) with them, so on a reordered
  // parent it silently returned the subgraph of the *wrong* vertex set;
  // it also dropped the permutation maps without saying so. The fresh-id
  // -space contract is now documented in graph.h and asserted below.
  std::unordered_map<VertexId, VertexId> index;  // original id -> result id
  index.reserve(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    VertexId v = vertices[i];
    if (v >= num_vertices_) {
      return Status::InvalidArgument("vertex out of range: " +
                                     std::to_string(v));
    }
    if (!index.emplace(v, static_cast<VertexId>(i)).second) {
      return Status::InvalidArgument("duplicate vertex: " + std::to_string(v));
    }
  }

  std::vector<Edge> edges;
  for (size_t i = 0; i < vertices.size(); ++i) {
    ForEachOutNeighbor(InternalId(vertices[i]), [&](VertexId u_internal) {
      auto it = index.find(OriginalId(u_internal));
      if (it == index.end()) return;
      if (directed_ || static_cast<VertexId>(i) < it->second) {
        edges.push_back({static_cast<VertexId>(i), it->second});
      }
    });
  }

  GraphOptions options;
  options.directed = directed_;
  options.compression = compression_mode_;
  Result<Graph> sub =
      FromEdges(static_cast<VertexId>(vertices.size()), std::move(edges),
                options);
  if (!sub.ok()) return sub.status();
  GAL_CHECK(!sub.value().IsReordered());
  if (IsLabeled()) {
    std::vector<Label> sub_labels(vertices.size());
    for (size_t i = 0; i < vertices.size(); ++i) {
      sub_labels[i] = labels_[InternalId(vertices[i])];
    }
    GAL_CHECK_OK(sub.value().SetLabels(std::move(sub_labels)));
  }
  return sub;
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    ForEachOutNeighbor(v, [&](VertexId u) {
      if (directed_ || v < u) edges.push_back({v, u});
    });
  }
  return edges;
}

size_t Graph::MemoryBytes() const {
  size_t bytes = offsets_.size() * sizeof(EdgeId) +
                 targets_.size() * sizeof(VertexId) +
                 labels_.size() * sizeof(Label);
  if (to_original_ != nullptr) bytes += to_original_->size() * sizeof(VertexId);
  if (to_internal_ != nullptr) bytes += to_internal_->size() * sizeof(VertexId);
  if (compressed_ != nullptr) bytes += compressed_->MemoryBytes();
  return bytes;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "Graph(|V|=" << num_vertices_ << ", |E|=" << num_edges_
     << ", directed=" << (directed_ ? "true" : "false")
     << ", labeled=" << (IsLabeled() ? "true" : "false");
  if (IsReordered()) {
    os << ", reorder="
       << (reorder_mode_ == ReorderMode::kDegreeDesc ? "degree-desc"
                                                     : "hub-cluster");
  }
  if (IsCompressed()) os << ", compression=delta-varint";
  os << ")";
  return os.str();
}

}  // namespace gal
