#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

namespace gal {
namespace {

/// Maps arbitrary external ids to dense [0, n) in first-appearance order.
class IdRemapper {
 public:
  VertexId Map(uint64_t external) {
    auto [it, inserted] = map_.emplace(external, next_);
    if (inserted) ++next_;
    return it->second;
  }
  VertexId size() const { return next_; }

 private:
  std::unordered_map<uint64_t, VertexId> map_;
  VertexId next_ = 0;
};

/// Shared line-by-line parser: only the current line is ever held in
/// memory, so LoadEdgeListFile reads straight off the ifstream instead
/// of slurping the whole file into a buffer first.
Result<Graph> ParseEdgeStream(std::istream& in, const GraphOptions& options) {
  std::string line;
  std::vector<Edge> edges;
  IdRemapper remap;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(ls >> src >> dst)) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + ": '" + line +
                                     "'");
    }
    edges.push_back({remap.Map(src), remap.Map(dst)});
  }
  return Graph::FromEdges(remap.size(), std::move(edges), options);
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text,
                            const GraphOptions& options) {
  std::istringstream in(text);
  return ParseEdgeStream(in, options);
}

Result<Graph> LoadEdgeListFile(const std::string& path,
                               const GraphOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseEdgeStream(in, options);
}

Status SaveEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const Edge& e : g.CollectEdges()) {
    out << e.src << " " << e.dst << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

}  // namespace gal
