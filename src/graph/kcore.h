#ifndef GAL_GRAPH_KCORE_H_
#define GAL_GRAPH_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Core decomposition and the classic 2-approximation for densest
/// subgraph — the "dense subgraph mining" building blocks of the survey's
/// structure-analytics path, also used to prune clique search (a k-clique
/// lives inside the (k-1)-core).

/// Returns the core number of every vertex (bucket peeling, O(|E|)).
/// Precondition: undirected graph.
std::vector<uint32_t> CoreNumbers(const Graph& g);

/// Vertices of the maximal k-core (possibly empty).
std::vector<VertexId> KCore(const Graph& g, uint32_t k);

/// Degeneracy = max core number; the degeneracy ordering drives
/// Bron–Kerbosch clique enumeration.
struct DegeneracyResult {
  uint32_t degeneracy = 0;
  /// Peeling order: position i holds the i-th removed vertex. In this
  /// order every vertex has at most `degeneracy` neighbors later in it.
  std::vector<VertexId> order;
  std::vector<uint32_t> core_numbers;
};
DegeneracyResult DegeneracyOrder(const Graph& g);

/// Charikar peel: returns the vertex set whose induced subgraph has
/// average degree >= half the optimum densest subgraph.
struct DensestSubgraphResult {
  std::vector<VertexId> vertices;
  double density = 0.0;  // |E(S)| / |S|
};
DensestSubgraphResult DensestSubgraphPeel(const Graph& g);

}  // namespace gal

#endif  // GAL_GRAPH_KCORE_H_
