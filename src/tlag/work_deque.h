#ifndef GAL_TLAG_WORK_DEQUE_H_
#define GAL_TLAG_WORK_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace gal {

/// A Chase–Lev work-stealing deque over heap-allocated task pointers:
/// the owner pushes and pops the *bottom* without locks (the LIFO order
/// that keeps DFS state bounded), thieves CAS-claim the *top* (the FIFO
/// end, where the oldest — and in a DFS search tree, biggest —
/// subproblems sit). Single owner, any number of thieves.
///
/// Memory-order scheme (the Lê et al. PPoPP'13 algorithm with the
/// standalone fences strengthened into seq_cst accesses on top_/bottom_
/// so ThreadSanitizer, which does not model fences, sees every
/// synchronization edge):
///
///   - The owner publishes a task by a release store to the buffer cell
///     followed by a seq_cst store to bottom_; a thief acquires the cell
///     after its seq_cst load of bottom_ observes the push, so the plain
///     task payload behind the pointer is ordered by the cell's own
///     release/acquire pair — no fence needed for TSan to see it.
///   - Pop decrements bottom_ with a seq_cst store before its seq_cst
///     load of top_; Steal loads top_ then bottom_ seq_cst. The seq_cst
///     total order makes the classic "both see the race" argument go
///     through: when only one task remains, owner and thief agree on who
///     wins via the seq_cst CAS on top_.
///   - top_ only ever grows (int64_t), so there is no ABA.
///
/// Growth: the owner swaps in a doubled buffer when full. Thieves may
/// still be reading the old buffer, so retired buffers are kept alive
/// until the deque is destroyed (cells are never overwritten in a
/// retired buffer, and a stale read is validated by the CAS on top_).
template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(size_t initial_capacity = 64) {
    size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    buffers_.push_back(std::make_unique<Buffer>(cap));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  ~WorkStealingDeque() {
    // Drain anything left (abnormal exit paths); tasks are owned here.
    T* t;
    while ((t = Pop()) != nullptr) delete t;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: pushes a task onto the bottom. Takes ownership.
  void Push(T* task) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->capacity)) {
      buf = Grow(buf, t, b);
    }
    buf->cells[b & buf->mask].store(task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pops the most recently pushed task (LIFO). Returns
  /// nullptr when empty. Caller takes ownership.
  T* Pop() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    T* task = buf->cells[b & buf->mask].load(std::memory_order_acquire);
    if (t == b) {
      // Last element: race thieves for it via the CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        task = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return task;
  }

  /// Any thread: steals the oldest task (FIFO). Returns nullptr when
  /// empty or when another thief (or the owner) won the race — callers
  /// treat that as "try another victim". Caller takes ownership.
  T* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T* task = buf->cells[t & buf->mask].load(std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return nullptr;  // lost the race; the winner owns the task
    }
    return task;
  }

  /// Approximate occupancy, safe from any thread. Seq_cst loads so a
  /// parker's emptiness re-check after announcing itself cannot miss a
  /// push that preceded the spawner's parked-count probe (the Dekker
  /// handshake in the task engine's parking lot).
  size_t ApproxSize() const {
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    const int64_t t = top_.load(std::memory_order_seq_cst);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T*>[cap]) {}
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<T*>[]> cells;
  };

  /// Owner only: doubles the buffer, copying live cells [t, b).
  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* bigger = buffers_.back().get();
    for (int64_t i = t; i < b; ++i) {
      bigger->cells[i & bigger->mask].store(
          old->cells[i & old->mask].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  /// All buffers ever allocated; retired ones stay alive for straggling
  /// thieves (owner-only mutation, only during Push).
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace gal

#endif  // GAL_TLAG_WORK_DEQUE_H_
