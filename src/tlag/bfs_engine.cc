#include "tlag/bfs_engine.h"

#include <algorithm>

namespace gal {
namespace {

uint64_t EmbeddingBytes(size_t embedding_size) {
  // Vertex ids plus vector bookkeeping, the dominant cost a real system
  // pays per materialized instance.
  return embedding_size * sizeof(VertexId) + sizeof(Embedding);
}

}  // namespace

BfsEngineStats BfsExtensionEngine::Run(const std::vector<VertexId>& roots,
                                       uint32_t target_size,
                                       const ExtendFn& extend,
                                       const OutputFn& output) {
  BfsEngineStats stats;
  std::vector<Embedding> frontier;
  frontier.reserve(roots.size());
  for (VertexId r : roots) frontier.push_back({r});
  stats.embeddings_generated += frontier.size();

  auto footprint = [&](const std::vector<Embedding>& level,
                       size_t embedding_size) {
    return static_cast<uint64_t>(level.size()) *
           EmbeddingBytes(embedding_size);
  };

  uint64_t current_bytes = footprint(frontier, 1);
  stats.peak_materialized = frontier.size();
  stats.peak_bytes = current_bytes;

  std::vector<VertexId> candidates;
  for (uint32_t size = 1; size < target_size; ++size) {
    std::vector<Embedding> next;
    uint64_t next_bytes = 0;
    // Chunked expansion: only chunk_size source embeddings are consumed
    // before their extensions are appended, mirroring G2-AIMD's
    // adaptive chunking (keeps the *working set* bounded even though
    // the output level itself may still explode).
    for (size_t begin = 0; begin < frontier.size();
         begin += config_.chunk_size) {
      const size_t end =
          std::min(frontier.size(), begin + config_.chunk_size);
      for (size_t i = begin; i < end; ++i) {
        const Embedding& e = frontier[i];
        candidates.clear();
        extend(e, candidates);
        for (VertexId c : candidates) {
          // Materialization accounting happens *before* policy checks so
          // every policy sees the same demand curve.
          const uint64_t bytes = EmbeddingBytes(e.size() + 1);
          const uint64_t live = current_bytes + next_bytes + bytes;
          ++stats.embeddings_generated;
          if (config_.memory_budget_bytes != 0 &&
              live > config_.memory_budget_bytes) {
            switch (config_.policy) {
              case MemoryPolicy::kStrict:
                stats.budget_exceeded = true;
                return stats;
              case MemoryPolicy::kSpill:
                stats.spilled_bytes += bytes;
                break;  // spilled copies still join the next level
              case MemoryPolicy::kHybridDfs: {
                Embedding extended = e;
                extended.push_back(c);
                DfsComplete(extended, target_size, extend, output, stats);
                continue;  // finished depth-first; not materialized
              }
            }
          }
          Embedding extended = e;
          extended.push_back(c);
          next_bytes += bytes;
          if (extended.size() == target_size) {
            output(extended);
            // Output embeddings are handed over, not retained.
            next_bytes -= bytes;
          } else {
            next.push_back(std::move(extended));
          }
        }
      }
    }
    stats.peak_materialized =
        std::max(stats.peak_materialized,
                 static_cast<uint64_t>(frontier.size() + next.size()));
    stats.peak_bytes = std::max(stats.peak_bytes, current_bytes + next_bytes);
    frontier = std::move(next);
    current_bytes = next_bytes;
    if (frontier.empty()) break;
  }
  return stats;
}

void BfsExtensionEngine::DfsComplete(Embedding& e, uint32_t target_size,
                                     const ExtendFn& extend,
                                     const OutputFn& output,
                                     BfsEngineStats& stats) {
  if (e.size() == target_size) {
    ++stats.dfs_fallback_embeddings;
    output(e);
    return;
  }
  std::vector<VertexId> candidates;
  extend(e, candidates);
  for (VertexId c : candidates) {
    ++stats.embeddings_generated;
    e.push_back(c);
    DfsComplete(e, target_size, extend, output, stats);
    e.pop_back();
  }
}

}  // namespace gal
