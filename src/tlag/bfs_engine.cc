#include "tlag/bfs_engine.h"

#include <algorithm>

#include "frontier/frontier.h"

namespace gal {
namespace {

uint64_t EmbeddingBytes(size_t embedding_size) {
  // Vertex ids plus vector bookkeeping, the dominant cost a real system
  // pays per materialized instance.
  return embedding_size * sizeof(VertexId) + sizeof(Embedding);
}

}  // namespace

BfsEngineStats BfsExtensionEngine::Run(const std::vector<VertexId>& roots,
                                       uint32_t target_size,
                                       const ExtendFn& extend,
                                       const OutputFn& output) {
  BfsEngineStats stats;
  // The level loop rides the shared frontier substrate's sliding queue:
  // the current window is the level being consumed, pushes land in the
  // next window, and Slide() retires consumed embeddings so the buffer
  // tracks the two live levels, not the whole run.
  SlidingQueue<Embedding> levels;
  levels.Reserve(roots.size());
  for (VertexId r : roots) levels.Push({r});
  levels.Slide();
  stats.embeddings_generated += levels.WindowSize();

  uint64_t current_bytes = levels.WindowSize() * EmbeddingBytes(1);
  stats.peak_materialized = levels.WindowSize();
  stats.peak_bytes = current_bytes;

  std::vector<VertexId> candidates;
  for (uint32_t size = 1; size < target_size; ++size) {
    uint64_t next_bytes = 0;  // resident (in-budget) bytes only
    const size_t level_count = levels.WindowSize();
    // Chunked expansion: only chunk_size source embeddings are consumed
    // before their extensions are appended, mirroring G2-AIMD's
    // adaptive chunking (keeps the *working set* bounded even though
    // the output level itself may still explode).
    for (size_t begin = 0; begin < level_count;
         begin += config_.chunk_size) {
      const size_t end =
          std::min(level_count, begin + config_.chunk_size);
      for (size_t i = begin; i < end; ++i) {
        candidates.clear();
        extend(levels.At(i), candidates);
        for (VertexId c : candidates) {
          // Materialization accounting happens *before* policy checks so
          // every policy sees the same demand curve. Re-index the source
          // embedding per candidate: Push may reallocate the queue.
          const uint64_t bytes = EmbeddingBytes(levels.At(i).size() + 1);
          const uint64_t live = current_bytes + next_bytes + bytes;
          ++stats.embeddings_generated;
          bool resident = true;
          if (config_.memory_budget_bytes != 0 &&
              live > config_.memory_budget_bytes) {
            switch (config_.policy) {
              case MemoryPolicy::kStrict:
                stats.budget_exceeded = true;
                return stats;
              case MemoryPolicy::kSpill:
                // Spilled copies still join the next level, but they
                // live in host memory: their bytes are overflow, not
                // residency (charging both double-counted the spill and
                // let peak_bytes sail past the budget).
                stats.spilled_bytes += bytes;
                resident = false;
                break;
              case MemoryPolicy::kHybridDfs: {
                Embedding extended = levels.At(i);
                extended.push_back(c);
                DfsComplete(extended, target_size, extend, output, stats);
                continue;  // finished depth-first; not materialized
              }
            }
          }
          Embedding extended = levels.At(i);
          extended.push_back(c);
          if (extended.size() == target_size) {
            // Output embeddings are handed over, not retained.
            output(extended);
          } else {
            if (resident) next_bytes += bytes;
            levels.Push(std::move(extended));
          }
        }
      }
    }
    stats.peak_materialized =
        std::max(stats.peak_materialized,
                 static_cast<uint64_t>(level_count + levels.PendingSize()));
    stats.peak_bytes = std::max(stats.peak_bytes, current_bytes + next_bytes);
    levels.Slide();
    current_bytes = next_bytes;
    if (levels.WindowEmpty()) break;
  }
  return stats;
}

void BfsExtensionEngine::DfsComplete(Embedding& e, uint32_t target_size,
                                     const ExtendFn& extend,
                                     const OutputFn& output,
                                     BfsEngineStats& stats) {
  if (e.size() == target_size) {
    ++stats.dfs_fallback_embeddings;
    output(e);
    return;
  }
  std::vector<VertexId> candidates;
  extend(e, candidates);
  for (VertexId c : candidates) {
    ++stats.embeddings_generated;
    e.push_back(c);
    DfsComplete(e, target_size, extend, output, stats);
    e.pop_back();
  }
}

}  // namespace gal
