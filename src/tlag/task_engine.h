#ifndef GAL_TLAG_TASK_ENGINE_H_
#define GAL_TLAG_TASK_ENGINE_H_

#include <atomic>
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault.h"
#include "common/core_budget.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "tlag/work_deque.h"

namespace gal {

/// Statistics of a task-engine run, the observables behind the survey's
/// G-thinker/T-thinker discussion: how much work moved between workers
/// (steals) and how evenly the makespan spread (idle time).
struct TaskEngineStats {
  uint64_t tasks_executed = 0;
  uint64_t tasks_spawned = 0;
  uint64_t steals = 0;
  /// Full victim-scan rounds that found nothing stealable.
  uint64_t failed_steal_attempts = 0;
  /// Times a worker gave up stealing and parked on the eventcount.
  uint64_t parks = 0;
  double wall_seconds = 0.0;
  /// Per-thread seconds spent executing tasks (vs idling/stealing).
  std::vector<double> busy_seconds;
  /// Seconds from first failed local pop to a successful steal, one
  /// sample per steal (how long work takes to migrate).
  StageTimingStat steal_latency;
  /// Seconds spent blocked in the parking lot, one sample per park.
  StageTimingStat park_time;
  /// Sampled deque depths (victim depth at each steal + periodic owner
  /// samples at spawn); unit is tasks, not seconds.
  StageTimingStat queue_depth;

  double TotalBusySeconds() const {
    double s = 0.0;
    for (double b : busy_seconds) s += b;
    return s;
  }
  /// busy / (wall * threads); 1.0 = perfect balance. An empty or
  /// unmeasurably short run reports 0 (there was no parallel work to be
  /// efficient at), not a vacuous 1.0.
  double ParallelEfficiency() const {
    const double busy = TotalBusySeconds();
    if (busy == 0.0 || wall_seconds == 0.0 || busy_seconds.empty()) return 0.0;
    return busy / (wall_seconds * static_cast<double>(busy_seconds.size()));
  }
};

/// How Run() spreads the initial tasks over the worker queues.
enum class InitialDistribution : uint8_t {
  /// Interleaved: task i goes to queue i mod threads. Smooths skew when
  /// tasks are many (the default).
  kRoundRobin,
  /// Contiguous blocks: queue w gets tasks [w*n/T, (w+1)*n/T) — how real
  /// systems statically shard a vertex range, and the distribution under
  /// which heavy-task skew shows (the work-stealing ablation baseline).
  kBlock,
};

struct TaskEngineConfig {
  /// 0 = resolve from GAL_TASK_THREADS, else hardware_concurrency.
  uint32_t num_threads = 0;
  /// When false, each thread only runs the initial tasks assigned to it
  /// (the static-partition baseline for the work-stealing ablation;
  /// spawned subtasks stay with their spawner).
  bool work_stealing = true;
  InitialDistribution distribution = InitialDistribution::kRoundRobin;
  /// Optional simulated-cluster substrate. When set, tasks may attribute
  /// the partition homes of the data they read via
  /// Context::TouchPartition, charging the runtime's TrafficLedger —
  /// putting think-like-a-graph mining on the same traffic axis as the
  /// TLAV and dist-GNN engines. Non-owning; the engine never mutates the
  /// runtime beyond ledger charges.
  ClusterRuntime* cluster = nullptr;
  /// Shared fault-tolerance schedule (cluster/fault.h). The task engine
  /// itself is a single work-stealing pass with no rounds; algorithms
  /// that want checkpoint/recovery (e.g. TaskTriangleCount) slice their
  /// task list into chunk-rounds and drive a RecoverySession across the
  /// chunks. Ignored when `cluster` is null — fault injection is a
  /// property of the simulated cluster, not of host threads.
  FaultPlan faults = FaultPlan::FromEnvOrWarn();
};

// ResolveTaskThreads — the explicit > GAL_TASK_THREADS > hardware
// resolution every engine uses for host threads — lives in
// cluster/cluster.h (included above) next to ResolveClusterWorkers.

/// A think-like-a-task scheduler in the T-thinker mold: tasks are
/// independent units of subgraph search; each worker owns a lock-free
/// Chase–Lev deque (LIFO for itself — the DFS order that keeps memory
/// bounded — FIFO for thieves, which steal the *largest/oldest*
/// subproblems). User code runs inside Process and may spawn subtasks,
/// which is exactly the "task splitting" mechanism G-thinker/STMatch use
/// for load balancing.
///
/// Idle policy: a worker whose deque is empty makes one randomized
/// victim-scan round; on failure it parks on an eventcount (epoch
/// counter + condvar) instead of sleep-scanning queues. Spawns wake one
/// parked thief; the worker that retires the last outstanding task wakes
/// everyone. The parked count doubles as the cheap StealPressure signal
/// that task-splitting call sites poll.
///
/// While running, the engine holds a CoreBudget::StageExecutorLease for
/// its workers, so tensor-kernel dispatches issued from inside tasks
/// shrink their shard fan-out instead of oversubscribing the machine.
template <typename T>
class TaskEngine {
 public:
  class Context;
  using ProcessFn = std::function<void(T&, Context&)>;

  /// A handle given to Process for spawning subtasks onto the engine.
  class Context {
   public:
    /// Queues a subtask (visible to thieves). Prefer spawning the larger
    /// half of a split so stealing moves real work.
    void Spawn(T task) { engine_->Spawn(thread_id_, std::move(task)); }
    uint32_t thread_id() const { return thread_id_; }
    /// True when at least one worker is parked hungry — the signal that
    /// splitting off a subtask will hand work to an idle core. One
    /// relaxed load; cheap enough for inner search loops.
    bool StealPressure() const {
      return engine_->parked_.load(std::memory_order_relaxed) > 0;
    }
    /// How many workers are parked right now (0..num_threads-1).
    uint32_t ParkedWorkers() const {
      return engine_->parked_.load(std::memory_order_relaxed);
    }
    /// Simulated-cluster attribution: this task read `bytes` of data
    /// whose home partition is `home_worker`. Host thread t executes on
    /// simulated worker t mod W; a read from the executing worker's own
    /// partition books as local on the runtime's ledger, a read of rows
    /// homed elsewhere is charged as cross-worker traffic — the data
    /// movement a steal (or a cross-partition probe) would really cost.
    /// No-op when the engine has no cluster configured.
    void TouchPartition(uint32_t home_worker, uint64_t bytes) {
      ClusterRuntime* cluster = engine_->config_.cluster;
      if (cluster == nullptr) return;
      cluster->ledger().Charge(home_worker,
                               thread_id_ % cluster->num_workers(), bytes);
    }
    /// The simulated worker this task executes on (thread id mod cluster
    /// width), or 0 without a cluster.
    uint32_t executing_worker() const {
      ClusterRuntime* cluster = engine_->config_.cluster;
      return cluster == nullptr ? 0 : thread_id_ % cluster->num_workers();
    }

   private:
    friend class TaskEngine;
    Context(TaskEngine* engine, uint32_t thread_id)
        : engine_(engine), thread_id_(thread_id) {}
    TaskEngine* engine_;
    uint32_t thread_id_;
  };

  explicit TaskEngine(TaskEngineConfig config) : config_(config) {
    config_.num_threads = ResolveTaskThreads(config_.num_threads);
    GAL_CHECK(config_.num_threads >= 1);
    workers_.reserve(config_.num_threads);
    for (uint32_t t = 0; t < config_.num_threads; ++t) {
      workers_.push_back(std::make_unique<Worker>(t));
    }
  }

  /// Runs all `initial_tasks` (distributed per config) plus everything
  /// they spawn; returns when no task remains anywhere.
  TaskEngineStats Run(std::vector<T> initial_tasks, const ProcessFn& process) {
    stats_ = TaskEngineStats{};
    stats_.busy_seconds.assign(config_.num_threads, 0.0);
    steal_latency_hist_.Reset();
    park_time_hist_.Reset();
    queue_depth_hist_.Reset();
    const uint32_t n = config_.num_threads;
    if (config_.distribution == InitialDistribution::kRoundRobin) {
      for (size_t i = 0; i < initial_tasks.size(); ++i) {
        workers_[i % n]->deque.Push(new T(std::move(initial_tasks[i])));
      }
    } else {
      const size_t block = (initial_tasks.size() + n - 1) / n;
      for (size_t i = 0; i < initial_tasks.size(); ++i) {
        workers_[std::min<size_t>(i / std::max<size_t>(block, 1), n - 1)]
            ->deque.Push(new T(std::move(initial_tasks[i])));
      }
    }
    outstanding_.store(initial_tasks.size(), std::memory_order_relaxed);
    parked_.store(0, std::memory_order_relaxed);
    spawned_.store(0, std::memory_order_relaxed);

    // Workers count against the core budget for the duration: kernel
    // dispatches from inside tasks see a shrunken shard cap.
    StageExecutorLease lease(n);

    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (uint32_t t = 0; t < n; ++t) {
      threads.emplace_back([this, t, &process] { WorkerLoop(t, process); });
    }
    for (std::thread& th : threads) th.join();
    stats_.wall_seconds = wall.ElapsedSeconds();
    stats_.tasks_spawned = spawned_.load(std::memory_order_relaxed);
    stats_.steal_latency =
        StageTimingStat::FromHistogram("steal_latency", steal_latency_hist_);
    stats_.park_time =
        StageTimingStat::FromHistogram("park_time", park_time_hist_);
    stats_.queue_depth =
        StageTimingStat::FromHistogram("queue_depth", queue_depth_hist_);
    return stats_;
  }

 private:
  /// Per-worker state, cache-line separated so thieves hammering one
  /// victim's top_ do not false-share with neighbours.
  struct alignas(64) Worker {
    explicit Worker(uint32_t id) : rng(0x9E3779B97F4A7C15ull ^ (id + 1)) {}
    WorkStealingDeque<T> deque;
    uint64_t rng;          // xorshift state for victim selection
    uint64_t spawns = 0;   // owner-side spawn counter (depth sampling)
  };

  void Spawn(uint32_t thread_id, T task) {
    // The spawning task is still outstanding, so the counter cannot hit
    // zero while we are here; increment before publishing regardless so
    // the count is never under the truth.
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    spawned_.fetch_add(1, std::memory_order_relaxed);
    Worker& w = *workers_[thread_id];
    w.deque.Push(new T(std::move(task)));
    if ((++w.spawns & 255) == 0) {
      queue_depth_hist_.Observe(static_cast<double>(w.deque.ApproxSize()));
    }
    WakeOneThief();
  }

  /// One randomized victim-scan round. Returns a task or nullptr.
  T* TrySteal(uint32_t thief, uint64_t& steals, uint64_t& failed_steals) {
    const uint32_t n = config_.num_threads;
    Worker& self = *workers_[thief];
    // xorshift64*: cheap, per-worker, deterministic seeding.
    self.rng ^= self.rng >> 12;
    self.rng ^= self.rng << 25;
    self.rng ^= self.rng >> 27;
    const uint32_t start = static_cast<uint32_t>(
        (self.rng * 0x2545F4914F6CDD1Dull) >> 33);
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t victim = (start + i) % n;
      if (victim == thief) continue;
      T* task = workers_[victim]->deque.Steal();
      if (task != nullptr) {
        ++steals;
        queue_depth_hist_.Observe(
            static_cast<double>(workers_[victim]->deque.ApproxSize()));
        return task;
      }
    }
    ++failed_steals;
    return nullptr;
  }

  bool AnyDequeNonEmpty() const {
    for (const auto& w : workers_) {
      if (w->deque.ApproxSize() > 0) return true;
    }
    return false;
  }

  /// Eventcount park: announce hunger, re-check for work (the Dekker
  /// handshake against Spawn's parked-count probe; see work_deque.h on
  /// why the emptiness scan uses seq_cst loads), then sleep until the
  /// epoch moves. The bounded wait is a belt-and-braces backstop; with
  /// the handshake correct it essentially never expires with work ready.
  void Park(uint64_t& parks) {
    parked_.fetch_add(1, std::memory_order_seq_cst);
    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (outstanding_.load(std::memory_order_acquire) != 0 &&
        !AnyDequeNonEmpty()) {
      ++parks;
      Timer park_timer;
      {
        std::unique_lock<std::mutex> lock(park_mu_);
        if (epoch_.load(std::memory_order_relaxed) == epoch &&
            outstanding_.load(std::memory_order_acquire) != 0) {
          park_cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
      }
      park_time_hist_.Observe(park_timer.ElapsedSeconds());
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  void WakeOneThief() {
    if (parked_.load(std::memory_order_seq_cst) == 0) return;
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    park_cv_.notify_one();
  }

  void WakeAllDone() {
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    park_cv_.notify_all();
  }

  void WorkerLoop(uint32_t thread_id, const ProcessFn& process) {
    Worker& self = *workers_[thread_id];
    uint64_t executed = 0;
    uint64_t steals = 0;
    uint64_t failed_steals = 0;
    uint64_t parks = 0;
    double busy = 0.0;
    const bool stealing = config_.work_stealing && config_.num_threads > 1;
    Timer hunt_timer;  // time since this worker last had work
    bool hunting = false;
    for (;;) {
      T* task = self.deque.Pop();
      if (task == nullptr && stealing) {
        if (!hunting) {
          hunting = true;
          hunt_timer.Reset();
        }
        task = TrySteal(thread_id, steals, failed_steals);
        if (task != nullptr) {
          steal_latency_hist_.Observe(hunt_timer.ElapsedSeconds());
        }
      }
      if (task != nullptr) {
        hunting = false;
        Timer t;
        Context ctx(this, thread_id);
        process(*task, ctx);
        delete task;
        busy += t.ElapsedSeconds();
        ++executed;
        if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          WakeAllDone();
        }
        continue;
      }
      if (!stealing) {
        // Spawned tasks stay with their spawner, so an empty own deque
        // means this worker is finished (the static baseline; also the
        // single-thread exit path).
        break;
      }
      if (outstanding_.load(std::memory_order_acquire) == 0) break;
      Park(parks);
      if (outstanding_.load(std::memory_order_acquire) == 0) break;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.tasks_executed += executed;
    stats_.steals += steals;
    stats_.failed_steal_attempts += failed_steals;
    stats_.parks += parks;
    stats_.busy_seconds[thread_id] = busy;
  }

  TaskEngineConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<uint64_t> spawned_{0};
  /// Workers currently parked on the eventcount — the StealPressure
  /// signal.
  std::atomic<uint32_t> parked_{0};
  /// Eventcount epoch: bumped under park_mu_ by every wake so a parker
  /// that observed a stale epoch never sleeps through its wakeup.
  std::atomic<uint64_t> epoch_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  Histogram steal_latency_hist_;
  Histogram park_time_hist_;
  Histogram queue_depth_hist_;
  std::mutex stats_mu_;
  TaskEngineStats stats_;
};

}  // namespace gal

#endif  // GAL_TLAG_TASK_ENGINE_H_
