#ifndef GAL_TLAG_TASK_ENGINE_H_
#define GAL_TLAG_TASK_ENGINE_H_

#include <atomic>
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace gal {

/// Statistics of a task-engine run, the observables behind the survey's
/// G-thinker/T-thinker discussion: how much work moved between workers
/// (steals) and how evenly the makespan spread (idle time).
struct TaskEngineStats {
  uint64_t tasks_executed = 0;
  uint64_t tasks_spawned = 0;
  uint64_t steals = 0;
  uint64_t failed_steal_attempts = 0;
  double wall_seconds = 0.0;
  /// Per-thread seconds spent executing tasks (vs idling/stealing).
  std::vector<double> busy_seconds;

  double TotalBusySeconds() const {
    double s = 0.0;
    for (double b : busy_seconds) s += b;
    return s;
  }
  /// 1.0 = perfect balance; wall * threads / busy.
  double ParallelEfficiency() const {
    const double busy = TotalBusySeconds();
    if (busy == 0.0 || wall_seconds == 0.0) return 1.0;
    return busy / (wall_seconds * static_cast<double>(busy_seconds.size()));
  }
};

/// How Run() spreads the initial tasks over the worker queues.
enum class InitialDistribution : uint8_t {
  /// Interleaved: task i goes to queue i mod threads. Smooths skew when
  /// tasks are many (the default).
  kRoundRobin,
  /// Contiguous blocks: queue w gets tasks [w*n/T, (w+1)*n/T) — how real
  /// systems statically shard a vertex range, and the distribution under
  /// which heavy-task skew shows (the work-stealing ablation baseline).
  kBlock,
};

struct TaskEngineConfig {
  uint32_t num_threads = 4;
  /// When false, each thread only runs the initial tasks assigned to it
  /// (the static-partition baseline for the work-stealing ablation;
  /// spawned subtasks stay with their spawner).
  bool work_stealing = true;
  InitialDistribution distribution = InitialDistribution::kRoundRobin;
};

/// A think-like-a-task scheduler in the T-thinker mold: tasks are
/// independent units of subgraph search; each worker owns a deque (LIFO
/// for itself — the DFS order that keeps memory bounded — FIFO for
/// thieves, which steal the *largest/oldest* subproblems). User code
/// runs inside Process and may spawn subtasks, which is exactly the
/// "task splitting" mechanism G-thinker/STMatch use for load balancing.
template <typename T>
class TaskEngine {
 public:
  class Context;
  using ProcessFn = std::function<void(T&, Context&)>;

  /// A handle given to Process for spawning subtasks onto the engine.
  class Context {
   public:
    /// Queues a subtask (visible to thieves). Prefer spawning the larger
    /// half of a split so stealing moves real work.
    void Spawn(T task) {
      engine_->Push(thread_id_, std::move(task));
      engine_->spawned_.fetch_add(1, std::memory_order_relaxed);
    }
    uint32_t thread_id() const { return thread_id_; }
    /// Rough signal that other workers are hungry; tasks can use it to
    /// decide whether splitting is worthwhile.
    bool StealPressure() const {
      return engine_->idle_threads_.load(std::memory_order_relaxed) > 0;
    }

   private:
    friend class TaskEngine;
    Context(TaskEngine* engine, uint32_t thread_id)
        : engine_(engine), thread_id_(thread_id) {}
    TaskEngine* engine_;
    uint32_t thread_id_;
  };

  explicit TaskEngine(TaskEngineConfig config) : config_(config) {
    GAL_CHECK(config_.num_threads >= 1);
    queues_ = std::vector<Queue>(config_.num_threads);
  }

  /// Runs all `initial_tasks` (distributed round-robin) plus everything
  /// they spawn; returns when no task remains anywhere.
  TaskEngineStats Run(std::vector<T> initial_tasks, const ProcessFn& process) {
    stats_ = TaskEngineStats{};
    stats_.busy_seconds.assign(config_.num_threads, 0.0);
    if (config_.distribution == InitialDistribution::kRoundRobin) {
      for (size_t i = 0; i < initial_tasks.size(); ++i) {
        queues_[i % config_.num_threads].deque.push_back(
            std::move(initial_tasks[i]));
      }
    } else {
      const size_t block =
          (initial_tasks.size() + config_.num_threads - 1) /
          config_.num_threads;
      for (size_t i = 0; i < initial_tasks.size(); ++i) {
        queues_[std::min<size_t>(i / std::max<size_t>(block, 1),
                                 config_.num_threads - 1)]
            .deque.push_back(std::move(initial_tasks[i]));
      }
    }
    outstanding_.store(initial_tasks.size());
    idle_threads_.store(0);
    spawned_.store(0);

    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(config_.num_threads);
    for (uint32_t t = 0; t < config_.num_threads; ++t) {
      threads.emplace_back([this, t, &process] { WorkerLoop(t, process); });
    }
    for (std::thread& th : threads) th.join();
    stats_.wall_seconds = wall.ElapsedSeconds();
    stats_.tasks_spawned = spawned_.load();
    return stats_;
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<T> deque;
  };

  void Push(uint32_t thread_id, T task) {
    Queue& q = queues_[thread_id];
    {
      std::lock_guard<std::mutex> lock(q.mu);
      q.deque.push_back(std::move(task));
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
  }

  bool PopLocal(uint32_t thread_id, T& out) {
    Queue& q = queues_[thread_id];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.deque.empty()) return false;
    out = std::move(q.deque.back());  // LIFO: DFS order, bounded memory
    q.deque.pop_back();
    return true;
  }

  bool Steal(uint32_t thief, T& out) {
    for (uint32_t probe = 1; probe < config_.num_threads; ++probe) {
      Queue& q = queues_[(thief + probe) % config_.num_threads];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.deque.empty()) continue;
      out = std::move(q.deque.front());  // FIFO end: biggest subproblems
      q.deque.pop_front();
      return true;
    }
    return false;
  }

  void WorkerLoop(uint32_t thread_id, const ProcessFn& process) {
    uint64_t executed = 0;
    uint64_t steals = 0;
    uint64_t failed_steals = 0;
    double busy = 0.0;
    T task;
    for (;;) {
      bool have = PopLocal(thread_id, task);
      if (!have && config_.work_stealing) {
        have = Steal(thread_id, task);
        if (have) {
          ++steals;
        } else {
          ++failed_steals;
        }
      }
      if (have) {
        Timer t;
        Context ctx(this, thread_id);
        process(task, ctx);
        busy += t.ElapsedSeconds();
        ++executed;
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      // Nothing local, nothing stolen: spin-wait until either all work
      // is done or new tasks appear.
      idle_threads_.fetch_add(1, std::memory_order_relaxed);
      for (;;) {
        if (outstanding_.load(std::memory_order_acquire) == 0) {
          idle_threads_.fetch_sub(1, std::memory_order_relaxed);
          goto done;
        }
        // Without stealing, a thread with an empty queue can only wait
        // for its own spawned tasks — which cannot appear — unless
        // global work drains; but with stealing disabled the static
        // baseline simply exits when its queue stays empty.
        if (!config_.work_stealing) {
          bool empty;
          {
            std::lock_guard<std::mutex> lock(queues_[thread_id].mu);
            empty = queues_[thread_id].deque.empty();
          }
          if (empty) {
            idle_threads_.fetch_sub(1, std::memory_order_relaxed);
            goto done;
          }
        }
        bool any_nonempty = false;
        for (Queue& q : queues_) {
          std::lock_guard<std::mutex> lock(q.mu);
          if (!q.deque.empty()) {
            any_nonempty = true;
            break;
          }
        }
        if (any_nonempty) {
          idle_threads_.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        // Back off so idle scanners do not hammer the queue locks that
        // busy workers need.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  done:
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.tasks_executed += executed;
    stats_.steals += steals;
    stats_.failed_steal_attempts += failed_steals;
    stats_.busy_seconds[thread_id] = busy;
  }

  TaskEngineConfig config_;
  std::vector<Queue> queues_;
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<uint64_t> spawned_{0};
  std::atomic<uint32_t> idle_threads_{0};
  std::mutex stats_mu_;
  TaskEngineStats stats_;
};

}  // namespace gal

#endif  // GAL_TLAG_TASK_ENGINE_H_
