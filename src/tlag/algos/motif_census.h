#ifndef GAL_TLAG_ALGOS_MOTIF_CENSUS_H_
#define GAL_TLAG_ALGOS_MOTIF_CENSUS_H_

#include <cstdint>
#include <map>
#include <string>

#include "graph/graph.h"
#include "tlag/task_engine.h"

namespace gal {

/// Connected-motif census: counts every connected induced subgraph of
/// size 3 or 4 by isomorphism class. This is the classic "graphlet"
/// statistic of network biology (the survey's bioinformatics
/// applications), computed exactly via the ESU enumerator, plus the
/// RAND-ESU sampled estimator — the lightweight alternative to the
/// neural subgraph counting the survey discusses, with a knob trading
/// work for accuracy.
struct MotifCensus {
  /// Canonical-code -> count. Codes come from fsm/canonical.h applied
  /// to the unlabeled induced subgraph (letters are all 'A').
  std::map<std::string, uint64_t> counts;
  uint64_t subgraphs_enumerated = 0;
  TaskEngineStats task_stats;
};

/// Exact census of size-`k` connected induced subgraphs (k = 3 or 4).
MotifCensus ExactMotifCensus(const Graph& g, uint32_t k,
                             const TaskEngineConfig& config = {});

/// RAND-ESU: each extension branch is kept with probability
/// `retention`; an enumerated subgraph therefore has probability
/// retention^(k-1), and counts are scaled back by its inverse. Unbiased
/// with variance shrinking as retention -> 1.
MotifCensus SampledMotifCensus(const Graph& g, uint32_t k, double retention,
                               uint64_t seed,
                               const TaskEngineConfig& config = {});

/// Human-readable motif names for the size-3/4 canonical codes
/// ("triangle", "path-3", "4-clique", ...); "?" when unknown.
const char* MotifName(const std::string& canonical_code);

}  // namespace gal

#endif  // GAL_TLAG_ALGOS_MOTIF_CENSUS_H_
