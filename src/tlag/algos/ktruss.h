#ifndef GAL_TLAG_ALGOS_KTRUSS_H_
#define GAL_TLAG_ALGOS_KTRUSS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// k-truss decomposition: the k-truss is the maximal subgraph whose
/// every edge closes at least (k-2) triangles inside it. Trussness is
/// the cohesive-subgraph measure between cores and cliques — the other
/// standard "dense structure" the survey's structure-analytics path
/// mines (a k-truss is a (k-1)-core, and a k-clique is inside the
/// k-truss).
struct KTrussResult {
  /// trussness[i] for the i-th edge of Graph::CollectEdges order: the
  /// largest k such that the edge survives in the k-truss (>= 2).
  std::vector<uint32_t> trussness;
  std::vector<Edge> edges;  // CollectEdges order, for convenience
  uint32_t max_trussness = 2;
  uint64_t support_updates = 0;  // peeling work measure
};

KTrussResult KTrussDecomposition(const Graph& g);

/// Vertices of the maximal k-truss (endpoints of surviving edges).
std::vector<VertexId> KTrussVertices(const Graph& g, uint32_t k);

}  // namespace gal

#endif  // GAL_TLAG_ALGOS_KTRUSS_H_
