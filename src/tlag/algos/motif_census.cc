#include "tlag/algos/motif_census.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "fsm/canonical.h"

namespace gal {
namespace {

/// Deterministic branch-retention coin for RAND-ESU.
bool KeepBranch(uint64_t seed, VertexId head, VertexId w, uint32_t depth,
                double retention) {
  uint64_t x = seed ^ (static_cast<uint64_t>(head) << 34) ^
               (static_cast<uint64_t>(w) << 8) ^ depth;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return (x >> 11) * (1.0 / 9007199254740992.0) < retention;
}

struct CensusShared {
  const Graph* g;
  uint32_t k;
  double retention;  // 1.0 = exact
  uint64_t seed;
  std::mutex mu;
  std::map<std::string, uint64_t> raw_counts;
  std::atomic<uint64_t> enumerated{0};

  void Record(const std::vector<VertexId>& s) {
    enumerated.fetch_add(1, std::memory_order_relaxed);
    // ESU walks the internal layout; InducedSubgraph takes original
    // ids. The census is structural, so the mapping changes nothing for
    // unordered builds and fixes reordered ones.
    std::vector<VertexId> original(s);
    for (VertexId& v : original) v = g->OriginalId(v);
    Result<Graph> induced = g->InducedSubgraph(original);
    GAL_CHECK(induced.ok()) << induced.status();
    // Census is structural: strip labels before canonicalization.
    Graph plain = std::move(induced.value());
    GAL_CHECK_OK(plain.SetLabels(
        std::vector<Label>(plain.NumVertices(), 0)));
    std::string code = CanonicalCode(plain);
    std::lock_guard<std::mutex> lock(mu);
    ++raw_counts[code];
  }
};

/// ESU recursion with optional branch sampling (RAND-ESU).
void Extend(CensusShared& shared, std::vector<VertexId>& subgraph,
            std::vector<VertexId>& pool, std::vector<uint8_t>& in_closure) {
  if (subgraph.size() == shared.k) {
    shared.Record(subgraph);
    return;
  }
  const Graph& g = *shared.g;
  std::vector<VertexId> remaining = pool;
  while (!remaining.empty()) {
    const VertexId w = remaining.back();
    remaining.pop_back();
    if (shared.retention < 1.0 &&
        !KeepBranch(shared.seed, subgraph.front(), w,
                    static_cast<uint32_t>(subgraph.size()),
                    shared.retention)) {
      continue;
    }
    std::vector<VertexId> child = remaining;
    std::vector<VertexId> newly_closed;
    g.ForEachOutNeighbor(w, [&](VertexId u) {
      if (u <= subgraph.front() || in_closure[u]) return;
      child.push_back(u);
      in_closure[u] = 1;
      newly_closed.push_back(u);
    });
    subgraph.push_back(w);
    Extend(shared, subgraph, child, in_closure);
    subgraph.pop_back();
    for (VertexId u : newly_closed) in_closure[u] = 0;
  }
}

MotifCensus RunCensus(const Graph& g, uint32_t k, double retention,
                      uint64_t seed, const TaskEngineConfig& config) {
  GAL_CHECK(k == 3 || k == 4) << "census supports sizes 3 and 4";
  GAL_CHECK(retention > 0.0 && retention <= 1.0);
  CensusShared shared;
  shared.g = &g;
  shared.k = k;
  shared.retention = retention;
  shared.seed = seed;

  std::vector<VertexId> roots(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) roots[v] = v;
  TaskEngine<VertexId> engine(config);
  TaskEngineStats stats = engine.Run(
      std::move(roots),
      [&shared, &g](VertexId& root, TaskEngine<VertexId>::Context&) {
        std::vector<uint8_t> in_closure(g.NumVertices(), 0);
        std::vector<VertexId> subgraph = {root};
        std::vector<VertexId> pool;
        in_closure[root] = 1;
        g.ForEachOutNeighbor(root, [&](VertexId u) {
          if (u > root) {
            pool.push_back(u);
            in_closure[u] = 1;
          }
        });
        Extend(shared, subgraph, pool, in_closure);
      });

  MotifCensus census;
  census.subgraphs_enumerated = shared.enumerated.load();
  census.task_stats = stats;
  // Horvitz–Thompson scaling: each size-k subgraph survived k-1
  // independent retention coins.
  double inv_prob = 1.0;
  for (uint32_t d = 1; d < k; ++d) inv_prob /= retention;
  for (const auto& [code, count] : shared.raw_counts) {
    census.counts[code] = static_cast<uint64_t>(
        count * inv_prob + 0.5);
  }
  return census;
}

}  // namespace

MotifCensus ExactMotifCensus(const Graph& g, uint32_t k,
                             const TaskEngineConfig& config) {
  return RunCensus(g, k, 1.0, 0, config);
}

MotifCensus SampledMotifCensus(const Graph& g, uint32_t k, double retention,
                               uint64_t seed, const TaskEngineConfig& config) {
  return RunCensus(g, k, retention, seed, config);
}

const char* MotifName(const std::string& code) {
  // Codes: k label chars ('A') + upper-triangular adjacency bits.
  if (code == "AAA011") return "path-3";
  if (code == "AAA111") return "triangle";
  if (code == "AAAA001101") return "path-4";
  if (code == "AAAA001011") return "star-3";   // claw
  if (code == "AAAA001111") return "tailed-triangle";
  if (code == "AAAA011110") return "4-cycle";
  if (code == "AAAA011111") return "diamond";
  if (code == "AAAA111111") return "4-clique";
  return "?";
}

}  // namespace gal
