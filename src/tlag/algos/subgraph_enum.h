#ifndef GAL_TLAG_ALGOS_SUBGRAPH_ENUM_H_
#define GAL_TLAG_ALGOS_SUBGRAPH_ENUM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "tlag/task_engine.h"

namespace gal {

/// Connected-induced-subgraph enumeration (the ESU scheme): every
/// connected vertex set of size <= max_size is visited exactly once,
/// depth-first, with per-root tasks on the work-stealing engine. This is
/// the generic "subgraph finding" kernel of the think-like-a-graph
/// model — quasi-clique mining, motif statistics, and the BFS-vs-DFS
/// ablation all instantiate it.
struct SubgraphEnumOptions {
  uint32_t max_size = 4;
  TaskEngineConfig engine;
};

struct SubgraphEnumStats {
  uint64_t subgraphs_visited = 0;
  /// Maximum recursion footprint observed (embedding + extension sets),
  /// in bytes — the O(depth) memory story of DFS systems.
  uint64_t peak_state_bytes = 0;
  TaskEngineStats task_stats;
};

/// Visits each connected induced subgraph (as a sorted-free vertex list
/// in discovery order, rooted at its minimum vertex). The visitor runs
/// concurrently from many threads and must be thread-safe. Returning
/// false prunes all extensions of the visited set.
using SubgraphVisitor = std::function<bool(const std::vector<VertexId>&)>;

SubgraphEnumStats EnumerateConnectedSubgraphs(
    const Graph& g, const SubgraphEnumOptions& options,
    const SubgraphVisitor& visitor);

}  // namespace gal

#endif  // GAL_TLAG_ALGOS_SUBGRAPH_ENUM_H_
