#ifndef GAL_TLAG_ALGOS_QUASI_CLIQUE_H_
#define GAL_TLAG_ALGOS_QUASI_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tlag/task_engine.h"

namespace gal {

/// γ-quasi-clique mining (the G-thinker application from Guo et al.): a
/// vertex set S is a γ-quasi-clique when every member has at least
/// ⌈γ·(|S|-1)⌉ neighbors inside S. Quasi-cliques are not hereditary, so
/// the search enumerates connected candidate sets with a conservative
/// degree-deficiency bound and validates at output — a bounded-size
/// variant of the Quick/G-thinker algorithm (sizes are capped by
/// max_size rather than mining maximal sets).
struct QuasiCliqueOptions {
  double gamma = 0.6;
  uint32_t min_size = 3;
  uint32_t max_size = 5;
  TaskEngineConfig engine;
};

struct QuasiCliqueResult {
  /// All vertex sets (sorted) satisfying the γ-degree condition with
  /// min_size <= |S| <= max_size.
  std::vector<std::vector<VertexId>> quasi_cliques;
  uint64_t sets_examined = 0;
  uint64_t pruned_branches = 0;
  TaskEngineStats task_stats;
};

QuasiCliqueResult FindQuasiCliques(const Graph& g,
                                   const QuasiCliqueOptions& options = {});

/// True iff `s` (any order, no duplicates) is a γ-quasi-clique of g.
bool IsQuasiClique(const Graph& g, const std::vector<VertexId>& s,
                   double gamma);

}  // namespace gal

#endif  // GAL_TLAG_ALGOS_QUASI_CLIQUE_H_
