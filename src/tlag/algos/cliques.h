#ifndef GAL_TLAG_ALGOS_CLIQUES_H_
#define GAL_TLAG_ALGOS_CLIQUES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tlag/task_engine.h"

namespace gal {

/// Clique mining in the think-like-a-task model (the G-thinker / G-Miner
/// headline workloads): search-tree subtrees become tasks, heavy tasks
/// split, idle workers steal.

struct MaximalCliqueOptions {
  /// Report only maximal cliques of at least this size.
  uint32_t min_size = 1;
  /// Search-tree depth down to which branches are spawned as engine
  /// tasks (task splitting); below it recursion stays local.
  uint32_t split_depth = 1;
  TaskEngineConfig engine;
};

struct MaximalCliqueResult {
  uint64_t count = 0;
  uint32_t largest = 0;
  /// Cliques (sorted vertex lists) if collect was requested.
  std::vector<std::vector<VertexId>> cliques;
  TaskEngineStats task_stats;
};

/// Enumerates all maximal cliques with Bron–Kerbosch (pivoting +
/// degeneracy-ordered root tasks). Set `collect` to keep the cliques
/// themselves (bounded workloads only).
MaximalCliqueResult MaximalCliques(const Graph& g,
                                   const MaximalCliqueOptions& options = {},
                                   bool collect = false);

struct MaximumCliqueResult {
  uint32_t size = 0;
  std::vector<VertexId> clique;
  uint64_t branches_explored = 0;
  uint64_t branches_pruned = 0;
  TaskEngineStats task_stats;
};

/// Exact maximum clique by branch-and-bound with a greedy-coloring upper
/// bound; the global incumbent is shared across tasks so pruning
/// tightens as any worker improves it.
MaximumCliqueResult MaximumClique(const Graph& g,
                                  const TaskEngineConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAG_ALGOS_CLIQUES_H_
