#include "tlag/algos/cliques.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "graph/intersect.h"
#include "graph/kcore.h"

namespace gal {
namespace {

/// Maps a clique's internal vertex ids back to the caller's original id
/// space, re-sorted (the permutation is not order-preserving).
std::vector<VertexId> CliqueToOriginal(const Graph& g,
                                       std::vector<VertexId> clique) {
  if (!g.IsReordered()) return clique;
  for (VertexId& v : clique) v = g.OriginalId(v);
  std::sort(clique.begin(), clique.end());
  return clique;
}

/// One Bron–Kerbosch search-tree node, shippable between workers.
struct BkTask {
  std::vector<VertexId> r;  // current clique
  std::vector<VertexId> p;  // candidates (sorted)
  std::vector<VertexId> x;  // excluded (sorted)
  uint32_t depth = 0;
};

struct BkShared {
  const Graph* g;
  const MaximalCliqueOptions* options;
  bool collect;
  std::atomic<uint64_t> count{0};
  std::atomic<uint32_t> largest{0};
  std::mutex out_mu;
  std::vector<std::vector<VertexId>> cliques;

  void Report(const std::vector<VertexId>& clique) {
    if (clique.size() < options->min_size) return;
    count.fetch_add(1, std::memory_order_relaxed);
    uint32_t cur = largest.load(std::memory_order_relaxed);
    while (clique.size() > cur &&
           !largest.compare_exchange_weak(
               cur, static_cast<uint32_t>(clique.size()))) {
    }
    if (collect) {
      std::vector<VertexId> sorted = clique;
      std::sort(sorted.begin(), sorted.end());
      std::lock_guard<std::mutex> lock(out_mu);
      cliques.push_back(std::move(sorted));
    }
  }
};

/// Chooses the pivot maximizing |P ∩ N(u)| over u in P ∪ X (Tomita).
/// `scratch` is the calling thread's decode buffer (compressed layouts).
VertexId ChoosePivot(const Graph& g, const std::vector<VertexId>& p,
                     const std::vector<VertexId>& x,
                     NeighborScratch& scratch) {
  VertexId pivot = kInvalidVertex;
  size_t best = 0;
  auto consider = [&](VertexId u) {
    const uint64_t overlap = IntersectCount(p, g, u, scratch);
    if (pivot == kInvalidVertex || overlap > best) {
      best = overlap;
      pivot = u;
    }
  };
  for (VertexId u : p) consider(u);
  for (VertexId u : x) consider(u);
  return pivot;
}

void BkRecurse(BkTask& task, BkShared& shared, NeighborScratch& scratch,
               TaskEngine<BkTask>::Context& ctx) {
  const Graph& g = *shared.g;
  if (task.p.empty() && task.x.empty()) {
    shared.Report(task.r);
    return;
  }
  if (task.p.empty()) return;

  const VertexId pivot = ChoosePivot(g, task.p, task.x, scratch);
  const auto pivot_nbrs = g.NeighborsInto(pivot, scratch.a);
  // Branch on P \ N(pivot).
  std::vector<VertexId> branch_vertices;
  std::set_difference(task.p.begin(), task.p.end(), pivot_nbrs.begin(),
                      pivot_nbrs.end(), std::back_inserter(branch_vertices));

  for (VertexId v : branch_vertices) {
    // pivot_nbrs is consumed; scratch.a is free for v's row. The row is
    // re-decoded per iteration because the recursion below reuses the
    // scratch — correctness over decode thrift at branch nodes.
    const auto nbrs = g.NeighborsInto(v, scratch.a);
    BkTask child;
    child.r = task.r;
    child.r.push_back(v);
    child.p = Intersect(task.p, nbrs);
    child.x = Intersect(task.x, nbrs);
    child.depth = task.depth + 1;

    // Task splitting: shallow branches become engine tasks so idle
    // workers can steal them; deep ones recurse locally (cheap).
    if (child.depth <= shared.options->split_depth && ctx.StealPressure()) {
      ctx.Spawn(std::move(child));
    } else {
      BkRecurse(child, shared, scratch, ctx);
    }
    // Move v from P to X.
    task.p.erase(std::lower_bound(task.p.begin(), task.p.end(), v));
    task.x.insert(std::lower_bound(task.x.begin(), task.x.end(), v), v);
  }
}

// --- maximum clique ---------------------------------------------------------

struct McTask {
  std::vector<VertexId> r;
  std::vector<VertexId> p;  // sorted candidates
};

struct McShared {
  const Graph* g;
  std::atomic<uint32_t> best_size{0};
  std::mutex best_mu;
  std::vector<VertexId> best_clique;
  std::atomic<uint64_t> branches{0};
  std::atomic<uint64_t> pruned{0};

  void Offer(const std::vector<VertexId>& clique) {
    uint32_t cur = best_size.load();
    if (clique.size() <= cur) return;
    std::lock_guard<std::mutex> lock(best_mu);
    if (clique.size() > best_clique.size()) {
      best_clique = clique;
      best_size.store(static_cast<uint32_t>(clique.size()));
    }
  }
};

/// Greedy coloring of P (in given order): the number of colors bounds
/// the largest clique inside P. Returns per-vertex color (1-based),
/// aligned with p's order.
uint32_t ColorBound(const Graph& g, const std::vector<VertexId>& p,
                    std::vector<uint32_t>& colors, NeighborScratch& scratch) {
  colors.assign(p.size(), 0);
  uint32_t num_colors = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    // Lowest color not used by earlier neighbors. One row decode per i
    // (instead of an O(d) HasEdge probe per (i,j) pair on compressed
    // layouts); membership stays a binary search either way.
    const auto nbrs = g.NeighborsInto(p[i], scratch.b);
    uint64_t used = 0;  // bitmask for first 64 colors
    for (size_t j = 0; j < i; ++j) {
      if (colors[j] <= 64 &&
          std::binary_search(nbrs.begin(), nbrs.end(), p[j])) {
        used |= uint64_t{1} << (colors[j] - 1);
      }
    }
    uint32_t c = 1;
    while (c <= 64 && (used & (uint64_t{1} << (c - 1)))) ++c;
    colors[i] = c;
    num_colors = std::max(num_colors, c);
  }
  return num_colors;
}

void McRecurse(McTask& task, McShared& shared, NeighborScratch& scratch,
               TaskEngine<McTask>::Context& ctx) {
  const Graph& g = *shared.g;
  shared.branches.fetch_add(1, std::memory_order_relaxed);
  if (task.p.empty()) {
    shared.Offer(task.r);
    return;
  }
  std::vector<uint32_t> colors;
  ColorBound(g, task.p, colors, scratch);
  // Process candidates in decreasing color: classic Tomita ordering —
  // once r.size() + color <= best, every remaining candidate is pruned.
  std::vector<size_t> order(task.p.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return colors[a] > colors[b]; });

  std::vector<VertexId> p = task.p;
  for (size_t idx : order) {
    const VertexId v = task.p[idx];
    if (task.r.size() + colors[idx] <= shared.best_size.load()) {
      shared.pruned.fetch_add(1, std::memory_order_relaxed);
      return;  // all later candidates have <= this color
    }
    McTask child;
    child.r = task.r;
    child.r.push_back(v);
    IntersectInto(p, g, v, child.p, scratch);
    if (child.r.size() + child.p.size() > shared.best_size.load()) {
      if (child.p.empty()) {
        shared.Offer(child.r);
      } else {
        McRecurse(child, shared, scratch, ctx);
      }
    } else {
      shared.pruned.fetch_add(1, std::memory_order_relaxed);
    }
    p.erase(std::lower_bound(p.begin(), p.end(), v));
  }
}

}  // namespace

MaximalCliqueResult MaximalCliques(const Graph& g,
                                   const MaximalCliqueOptions& options,
                                   bool collect) {
  BkShared shared;
  shared.g = &g;
  shared.options = &options;
  shared.collect = collect;

  // Degeneracy-ordered root tasks: vertex v with candidates among its
  // later neighbors, excluded among earlier ones — the standard
  // Eppstein–Löffler–Strash decomposition, which also makes root tasks
  // independent (ideal G-thinker tasks).
  DegeneracyResult degen = DegeneracyOrder(g);
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < degen.order.size(); ++i) pos[degen.order[i]] = i;

  std::vector<BkTask> roots;
  roots.reserve(g.NumVertices());
  for (VertexId v : degen.order) {
    BkTask t;
    t.r = {v};
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      (pos[u] > pos[v] ? t.p : t.x).push_back(u);
    });
    std::sort(t.p.begin(), t.p.end());
    std::sort(t.x.begin(), t.x.end());
    t.depth = 1;
    roots.push_back(std::move(t));
  }

  // One decode scratch per engine thread (compressed layouts); a task
  // only ever touches its own thread's buffers.
  std::vector<NeighborScratch> scratch(
      ResolveTaskThreads(options.engine.num_threads));
  TaskEngine<BkTask> engine(options.engine);
  TaskEngineStats stats = engine.Run(
      std::move(roots),
      [&shared, &scratch](BkTask& task, TaskEngine<BkTask>::Context& ctx) {
        BkRecurse(task, shared, scratch[ctx.thread_id()], ctx);
      });

  MaximalCliqueResult result;
  result.count = shared.count.load();
  result.largest = shared.largest.load();
  result.cliques = std::move(shared.cliques);
  for (std::vector<VertexId>& clique : result.cliques) {
    clique = CliqueToOriginal(g, std::move(clique));
  }
  result.task_stats = stats;
  return result;
}

MaximumCliqueResult MaximumClique(const Graph& g,
                                  const TaskEngineConfig& config) {
  McShared shared;
  shared.g = &g;

  DegeneracyResult degen = DegeneracyOrder(g);
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < degen.order.size(); ++i) pos[degen.order[i]] = i;

  std::vector<McTask> roots;
  for (VertexId v : degen.order) {
    McTask t;
    t.r = {v};
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (pos[u] > pos[v]) t.p.push_back(u);
    });
    std::sort(t.p.begin(), t.p.end());
    roots.push_back(std::move(t));
  }

  std::vector<NeighborScratch> scratch(ResolveTaskThreads(config.num_threads));
  TaskEngine<McTask> engine(config);
  TaskEngineStats stats = engine.Run(
      std::move(roots), [&shared, &scratch](McTask& task,
                                            TaskEngine<McTask>::Context& ctx) {
        // Root-level bound: skip tasks that cannot beat the incumbent.
        if (task.r.size() + task.p.size() <= shared.best_size.load()) {
          shared.pruned.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        McRecurse(task, shared, scratch[ctx.thread_id()], ctx);
      });

  MaximumCliqueResult result;
  result.size = shared.best_size.load();
  result.clique = CliqueToOriginal(g, shared.best_clique);
  std::sort(result.clique.begin(), result.clique.end());
  result.branches_explored = shared.branches.load();
  result.branches_pruned = shared.pruned.load();
  result.task_stats = stats;
  return result;
}

}  // namespace gal
