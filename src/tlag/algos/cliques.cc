#include "tlag/algos/cliques.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "graph/intersect.h"
#include "graph/kcore.h"

namespace gal {
namespace {

/// Maps a clique's internal vertex ids back to the caller's original id
/// space, re-sorted (the permutation is not order-preserving).
std::vector<VertexId> CliqueToOriginal(const Graph& g,
                                       std::vector<VertexId> clique) {
  if (!g.IsReordered()) return clique;
  for (VertexId& v : clique) v = g.OriginalId(v);
  std::sort(clique.begin(), clique.end());
  return clique;
}

/// One Bron–Kerbosch search-tree node, shippable between workers.
struct BkTask {
  std::vector<VertexId> r;  // current clique
  std::vector<VertexId> p;  // candidates (sorted)
  std::vector<VertexId> x;  // excluded (sorted)
  uint32_t depth = 0;
};

struct BkShared {
  const Graph* g;
  const MaximalCliqueOptions* options;
  bool collect;
  std::atomic<uint64_t> count{0};
  std::atomic<uint32_t> largest{0};
  std::mutex out_mu;
  std::vector<std::vector<VertexId>> cliques;

  void Report(const std::vector<VertexId>& clique) {
    if (clique.size() < options->min_size) return;
    count.fetch_add(1, std::memory_order_relaxed);
    uint32_t cur = largest.load(std::memory_order_relaxed);
    while (clique.size() > cur &&
           !largest.compare_exchange_weak(
               cur, static_cast<uint32_t>(clique.size()))) {
    }
    if (collect) {
      std::vector<VertexId> sorted = clique;
      std::sort(sorted.begin(), sorted.end());
      std::lock_guard<std::mutex> lock(out_mu);
      cliques.push_back(std::move(sorted));
    }
  }
};

/// Chooses the pivot maximizing |P ∩ N(u)| over u in P ∪ X (Tomita).
VertexId ChoosePivot(const Graph& g, const std::vector<VertexId>& p,
                     const std::vector<VertexId>& x) {
  VertexId pivot = kInvalidVertex;
  size_t best = 0;
  auto consider = [&](VertexId u) {
    const uint64_t overlap = IntersectCount(p, g.Neighbors(u));
    if (pivot == kInvalidVertex || overlap > best) {
      best = overlap;
      pivot = u;
    }
  };
  for (VertexId u : p) consider(u);
  for (VertexId u : x) consider(u);
  return pivot;
}

void BkRecurse(BkTask& task, BkShared& shared,
               TaskEngine<BkTask>::Context& ctx) {
  const Graph& g = *shared.g;
  if (task.p.empty() && task.x.empty()) {
    shared.Report(task.r);
    return;
  }
  if (task.p.empty()) return;

  const VertexId pivot = ChoosePivot(g, task.p, task.x);
  const auto pivot_nbrs = g.Neighbors(pivot);
  // Branch on P \ N(pivot).
  std::vector<VertexId> branch_vertices;
  std::set_difference(task.p.begin(), task.p.end(), pivot_nbrs.begin(),
                      pivot_nbrs.end(), std::back_inserter(branch_vertices));

  for (VertexId v : branch_vertices) {
    const auto nbrs = g.Neighbors(v);
    BkTask child;
    child.r = task.r;
    child.r.push_back(v);
    child.p = Intersect(task.p, nbrs);
    child.x = Intersect(task.x, nbrs);
    child.depth = task.depth + 1;

    // Task splitting: shallow branches become engine tasks so idle
    // workers can steal them; deep ones recurse locally (cheap).
    if (child.depth <= shared.options->split_depth && ctx.StealPressure()) {
      ctx.Spawn(std::move(child));
    } else {
      BkRecurse(child, shared, ctx);
    }
    // Move v from P to X.
    task.p.erase(std::lower_bound(task.p.begin(), task.p.end(), v));
    task.x.insert(std::lower_bound(task.x.begin(), task.x.end(), v), v);
  }
}

// --- maximum clique ---------------------------------------------------------

struct McTask {
  std::vector<VertexId> r;
  std::vector<VertexId> p;  // sorted candidates
};

struct McShared {
  const Graph* g;
  std::atomic<uint32_t> best_size{0};
  std::mutex best_mu;
  std::vector<VertexId> best_clique;
  std::atomic<uint64_t> branches{0};
  std::atomic<uint64_t> pruned{0};

  void Offer(const std::vector<VertexId>& clique) {
    uint32_t cur = best_size.load();
    if (clique.size() <= cur) return;
    std::lock_guard<std::mutex> lock(best_mu);
    if (clique.size() > best_clique.size()) {
      best_clique = clique;
      best_size.store(static_cast<uint32_t>(clique.size()));
    }
  }
};

/// Greedy coloring of P (in given order): the number of colors bounds
/// the largest clique inside P. Returns per-vertex color (1-based),
/// aligned with p's order.
uint32_t ColorBound(const Graph& g, const std::vector<VertexId>& p,
                    std::vector<uint32_t>& colors) {
  colors.assign(p.size(), 0);
  uint32_t num_colors = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    // Lowest color not used by earlier neighbors.
    uint64_t used = 0;  // bitmask for first 64 colors
    for (size_t j = 0; j < i; ++j) {
      if (colors[j] <= 64 && g.HasEdge(p[i], p[j])) {
        used |= uint64_t{1} << (colors[j] - 1);
      }
    }
    uint32_t c = 1;
    while (c <= 64 && (used & (uint64_t{1} << (c - 1)))) ++c;
    colors[i] = c;
    num_colors = std::max(num_colors, c);
  }
  return num_colors;
}

void McRecurse(McTask& task, McShared& shared,
               TaskEngine<McTask>::Context& ctx) {
  const Graph& g = *shared.g;
  shared.branches.fetch_add(1, std::memory_order_relaxed);
  if (task.p.empty()) {
    shared.Offer(task.r);
    return;
  }
  std::vector<uint32_t> colors;
  ColorBound(g, task.p, colors);
  // Process candidates in decreasing color: classic Tomita ordering —
  // once r.size() + color <= best, every remaining candidate is pruned.
  std::vector<size_t> order(task.p.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return colors[a] > colors[b]; });

  std::vector<VertexId> p = task.p;
  for (size_t idx : order) {
    const VertexId v = task.p[idx];
    if (task.r.size() + colors[idx] <= shared.best_size.load()) {
      shared.pruned.fetch_add(1, std::memory_order_relaxed);
      return;  // all later candidates have <= this color
    }
    McTask child;
    child.r = task.r;
    child.r.push_back(v);
    child.p = Intersect(p, g.Neighbors(v));
    if (child.r.size() + child.p.size() > shared.best_size.load()) {
      if (child.p.empty()) {
        shared.Offer(child.r);
      } else {
        McRecurse(child, shared, ctx);
      }
    } else {
      shared.pruned.fetch_add(1, std::memory_order_relaxed);
    }
    p.erase(std::lower_bound(p.begin(), p.end(), v));
  }
}

}  // namespace

MaximalCliqueResult MaximalCliques(const Graph& g,
                                   const MaximalCliqueOptions& options,
                                   bool collect) {
  BkShared shared;
  shared.g = &g;
  shared.options = &options;
  shared.collect = collect;

  // Degeneracy-ordered root tasks: vertex v with candidates among its
  // later neighbors, excluded among earlier ones — the standard
  // Eppstein–Löffler–Strash decomposition, which also makes root tasks
  // independent (ideal G-thinker tasks).
  DegeneracyResult degen = DegeneracyOrder(g);
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < degen.order.size(); ++i) pos[degen.order[i]] = i;

  std::vector<BkTask> roots;
  roots.reserve(g.NumVertices());
  for (VertexId v : degen.order) {
    BkTask t;
    t.r = {v};
    for (VertexId u : g.Neighbors(v)) {
      (pos[u] > pos[v] ? t.p : t.x).push_back(u);
    }
    std::sort(t.p.begin(), t.p.end());
    std::sort(t.x.begin(), t.x.end());
    t.depth = 1;
    roots.push_back(std::move(t));
  }

  TaskEngine<BkTask> engine(options.engine);
  TaskEngineStats stats = engine.Run(
      std::move(roots),
      [&shared](BkTask& task, TaskEngine<BkTask>::Context& ctx) {
        BkRecurse(task, shared, ctx);
      });

  MaximalCliqueResult result;
  result.count = shared.count.load();
  result.largest = shared.largest.load();
  result.cliques = std::move(shared.cliques);
  for (std::vector<VertexId>& clique : result.cliques) {
    clique = CliqueToOriginal(g, std::move(clique));
  }
  result.task_stats = stats;
  return result;
}

MaximumCliqueResult MaximumClique(const Graph& g,
                                  const TaskEngineConfig& config) {
  McShared shared;
  shared.g = &g;

  DegeneracyResult degen = DegeneracyOrder(g);
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < degen.order.size(); ++i) pos[degen.order[i]] = i;

  std::vector<McTask> roots;
  for (VertexId v : degen.order) {
    McTask t;
    t.r = {v};
    for (VertexId u : g.Neighbors(v)) {
      if (pos[u] > pos[v]) t.p.push_back(u);
    }
    std::sort(t.p.begin(), t.p.end());
    roots.push_back(std::move(t));
  }

  TaskEngine<McTask> engine(config);
  TaskEngineStats stats = engine.Run(
      std::move(roots), [&shared](McTask& task,
                                  TaskEngine<McTask>::Context& ctx) {
        // Root-level bound: skip tasks that cannot beat the incumbent.
        if (task.r.size() + task.p.size() <= shared.best_size.load()) {
          shared.pruned.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        McRecurse(task, shared, ctx);
      });

  MaximumCliqueResult result;
  result.size = shared.best_size.load();
  result.clique = CliqueToOriginal(g, shared.best_clique);
  std::sort(result.clique.begin(), result.clique.end());
  result.branches_explored = shared.branches.load();
  result.branches_pruned = shared.pruned.load();
  result.task_stats = stats;
  return result;
}

}  // namespace gal
