#ifndef GAL_TLAG_ALGOS_TRIANGLES_H_
#define GAL_TLAG_ALGOS_TRIANGLES_H_

#include <cstdint>

#include "graph/graph.h"
#include "tlag/task_engine.h"

namespace gal {

/// Intersection-based triangle counting — the "one machine beats 1636"
/// side of the survey's §1 anecdote. Work is Σ_v d+(v)² intersections
/// over a degree-oriented graph with *zero* messages, versus the TLAV
/// formulation's one message per wedge.
struct TriangleCountResult {
  uint64_t triangles = 0;
  /// Adjacency elements touched by the merge intersections; the unit to
  /// compare against TlavStats::total_messages.
  uint64_t intersection_ops = 0;
  double wall_seconds = 0.0;
  TaskEngineStats task_stats;  // zeroed for the serial variant

  /// Simulated-cluster attribution, populated only when
  /// TaskEngineConfig::cluster is set: every oriented adjacency row a
  /// task intersects is charged to the row's home partition on the
  /// runtime's ledger. `migrated_bytes` is the subset homed off the
  /// executing worker — what a real cluster would move; the job also
  /// closes one VirtualClock round (max worker busy + transfer time).
  uint64_t data_touched_bytes = 0;
  uint64_t migrated_bytes = 0;
  double modeled_seconds = 0.0;

  /// Fault-tolerance accounting (cluster/checkpoint.h), populated when
  /// the config carries an active FaultPlan and a cluster: the vertex
  /// tasks run as chunk-rounds with the folded {triangles, ops} totals
  /// checkpointed between chunks, so an injected worker failure replays
  /// only the chunks since the last checkpoint and the final counts stay
  /// bit-identical to the failure-free run.
  uint32_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t restored_bytes = 0;
  uint32_t failures_recovered = 0;
  uint32_t recomputed_rounds = 0;
};

/// Single-threaded external-memory-style pass (Chu & Cheng's serial
/// contender).
TriangleCountResult SerialTriangleCount(const Graph& g);

/// The same algorithm as per-vertex tasks on the work-stealing engine.
TriangleCountResult TaskTriangleCount(const Graph& g,
                                      const TaskEngineConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAG_ALGOS_TRIANGLES_H_
