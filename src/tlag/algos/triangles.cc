#include "tlag/algos/triangles.h"

#include <algorithm>
#include <span>
#include <vector>

#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "common/timer.h"
#include "graph/intersect.h"
#include "partition/partition.h"

namespace gal {
namespace {

/// Builds the degree-oriented adjacency: for each v, neighbors u with
/// (deg(u), u) > (deg(v), v), kept sorted by id. Orientation makes every
/// triangle counted exactly once and bounds out-degrees by O(sqrt(|E|))
/// on arbitrary graphs.
std::vector<std::vector<VertexId>> OrientByDegree(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<std::vector<VertexId>> out(n);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t dv = g.Degree(v);
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      const uint32_t du = g.Degree(u);
      if (du > dv || (du == dv && u > v)) out[v].push_back(u);
    });
  }
  return out;
}

/// Per-worker triangle/ops tally, padded to a cache line so concurrent
/// workers never share one — the ledger idiom; folded once at the end.
struct alignas(64) WorkerTally {
  uint64_t triangles = 0;
  uint64_t ops = 0;
};

}  // namespace

TriangleCountResult SerialTriangleCount(const Graph& g) {
  Timer timer;
  TriangleCountResult result;
  const std::vector<std::vector<VertexId>> oriented = OrientByDegree(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : oriented[v]) {
      result.triangles +=
          IntersectCount(oriented[v], oriented[u], &result.intersection_ops);
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

TriangleCountResult TaskTriangleCount(const Graph& g,
                                      const TaskEngineConfig& config) {
  Timer timer;
  TriangleCountResult result;
  const std::vector<std::vector<VertexId>> oriented = OrientByDegree(g);
  // One padded tally per engine thread; contention-free during the run,
  // folded after the engine drains.
  std::vector<WorkerTally> tallies(ResolveTaskThreads(config.num_threads));

  // Simulated-cluster attribution: make sure the runtime has a placement
  // for this graph (hash by default, or whatever a caller pre-installed),
  // then snapshot the ledger so the job's traffic is a clean delta.
  ClusterRuntime* cluster = config.cluster;
  const VertexPartition* parts = nullptr;
  TrafficSnapshot before;
  size_t clock_mark = 0;
  if (cluster != nullptr) {
    if (!cluster->has_partition() ||
        cluster->partition().assignment.size() != g.NumVertices()) {
      cluster->InstallPartition(HashPartition(g, cluster->num_workers()));
    }
    parts = &cluster->partition();
    before = cluster->ledger().Snapshot();
    clock_mark = cluster->clock().rounds();
  }

  const auto process = [&](VertexId& v, TaskEngine<VertexId>::Context& ctx) {
    WorkerTally& tally = tallies[ctx.thread_id()];
    if (parts != nullptr) {
      ctx.TouchPartition(parts->assignment[v],
                         oriented[v].size() * sizeof(VertexId));
    }
    for (VertexId u : oriented[v]) {
      if (parts != nullptr) {
        ctx.TouchPartition(parts->assignment[u],
                           oriented[u].size() * sizeof(VertexId));
      }
      tally.triangles += IntersectCount(oriented[v], oriented[u], &tally.ops);
    }
  };

  if (cluster == nullptr || config.faults.empty()) {
    // Fast path: one work-stealing pass over all vertex tasks.
    std::vector<VertexId> tasks(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) tasks[v] = v;
    TaskEngine<VertexId> engine(config);
    result.task_stats = engine.Run(std::move(tasks), process);
    for (const WorkerTally& tally : tallies) {
      result.triangles += tally.triangles;
      result.intersection_ops += tally.ops;
    }
    result.wall_seconds = timer.ElapsedSeconds();

    if (cluster != nullptr) {
      // Fold host-thread busy time onto simulated workers (thread t ran
      // worker t mod W) and close the job as one BSP round on the shared
      // clock.
      std::vector<double> worker_compute(cluster->num_workers(), 0.0);
      for (size_t t = 0; t < result.task_stats.busy_seconds.size(); ++t) {
        worker_compute[t % cluster->num_workers()] +=
            result.task_stats.busy_seconds[t];
      }
      const TrafficSnapshot after = cluster->ledger().Snapshot();
      const uint64_t cross_bytes = after.cross_bytes - before.cross_bytes;
      const uint64_t cross_msgs = after.cross_messages - before.cross_messages;
      cluster->clock().AdvanceRound(worker_compute, cross_bytes, cross_msgs);
      result.migrated_bytes = cross_bytes;
      result.data_touched_bytes =
          cross_bytes + (after.local_bytes - before.local_bytes);
      result.modeled_seconds = cluster->clock().SecondsSince(clock_mark);
    }
    return result;
  }

  // Elastic fault-tolerant path: the vertex-task list is sliced into
  // chunk-rounds so the run has BSP barriers for the shared
  // RecoverySession to checkpoint at, inject failures into, and stretch
  // with stragglers — the same hooks TLAV supersteps and dist-GCN epochs
  // use. The checkpointed state is the folded {triangles, ops} running
  // totals: a worker failure replays only the chunks since the last
  // checkpoint, and the order-independent sum makes the recovered counts
  // bit-identical to the failure-free run. (No rebalancing here —
  // work-stealing already balances within each chunk.)
  const uint32_t num_workers = cluster->num_workers();
  RecoverySession session(cluster, config.faults);
  uint64_t done_triangles = 0;
  uint64_t done_ops = 0;
  auto snapshot_totals = [&]() {
    BlobWriter w;
    w.Pod<uint64_t>(done_triangles);
    w.Pod<uint64_t>(done_ops);
    return std::move(w).Take();
  };
  if (session.WantsInitialCheckpoint()) {
    session.Commit(RecoverySession::kInitialRound, snapshot_totals());
  }

  constexpr VertexId kChunkRounds = 16;
  const VertexId n = g.NumVertices();
  const VertexId chunk = (n + kChunkRounds - 1) / kChunkRounds;
  const uint32_t num_rounds =
      chunk == 0 ? 0 : static_cast<uint32_t>((n + chunk - 1) / chunk);
  result.task_stats.busy_seconds.assign(ResolveTaskThreads(config.num_threads),
                                        0.0);
  TrafficSnapshot prev = before;
  uint32_t round = 0;
  while (round < num_rounds) {
    const VertexId begin = round * chunk;
    const VertexId end = std::min<VertexId>(n, begin + chunk);
    std::vector<VertexId> tasks;
    tasks.reserve(end - begin);
    for (VertexId v = begin; v < end; ++v) tasks.push_back(v);
    for (WorkerTally& tally : tallies) tally = WorkerTally{};

    TaskEngine<VertexId> engine(config);
    const TaskEngineStats round_stats = engine.Run(std::move(tasks), process);
    for (const WorkerTally& tally : tallies) {
      done_triangles += tally.triangles;
      done_ops += tally.ops;
    }
    result.task_stats.tasks_executed += round_stats.tasks_executed;
    result.task_stats.tasks_spawned += round_stats.tasks_spawned;
    result.task_stats.steals += round_stats.steals;
    result.task_stats.failed_steal_attempts +=
        round_stats.failed_steal_attempts;
    result.task_stats.parks += round_stats.parks;
    result.task_stats.wall_seconds += round_stats.wall_seconds;
    for (size_t t = 0; t < round_stats.busy_seconds.size(); ++t) {
      result.task_stats.busy_seconds[t] += round_stats.busy_seconds[t];
    }

    std::vector<double> worker_compute(num_workers, 0.0);
    for (size_t t = 0; t < round_stats.busy_seconds.size(); ++t) {
      worker_compute[t % num_workers] += round_stats.busy_seconds[t];
    }
    session.ScaleCompute(round, std::span<double>(worker_compute));
    const TrafficSnapshot after = cluster->ledger().Snapshot();
    cluster->clock().AdvanceRound(
        std::span<const double>(worker_compute),
        after.cross_bytes - prev.cross_bytes,
        after.cross_messages - prev.cross_messages);
    prev = after;

    if (session.ShouldCheckpoint(round)) {
      session.Commit(round, snapshot_totals());
      prev = cluster->ledger().Snapshot();
    }
    uint32_t resume_round = 0;
    if (const std::vector<uint8_t>* blob =
            session.OnFailure(round, &resume_round)) {
      BlobReader r(*blob);
      done_triangles = r.Pod<uint64_t>();
      done_ops = r.Pod<uint64_t>();
      GAL_CHECK(r.exhausted());
      round = resume_round;
      prev = cluster->ledger().Snapshot();
      continue;
    }
    ++round;
  }

  result.triangles = done_triangles;
  result.intersection_ops = done_ops;
  result.wall_seconds = timer.ElapsedSeconds();

  const TrafficSnapshot after = cluster->ledger().Snapshot();
  result.migrated_bytes = after.cross_bytes - before.cross_bytes;
  result.data_touched_bytes = result.migrated_bytes +
                              (after.local_bytes - before.local_bytes);
  result.modeled_seconds = cluster->clock().SecondsSince(clock_mark);
  const FaultStats& fault_stats = session.stats();
  result.checkpoints_taken = fault_stats.checkpoints_taken;
  result.checkpoint_bytes = fault_stats.checkpoint_bytes;
  result.restored_bytes = fault_stats.restored_bytes;
  result.failures_recovered = fault_stats.failures_recovered;
  result.recomputed_rounds = fault_stats.recomputed_rounds;
  return result;
}

}  // namespace gal
