#include "tlag/algos/triangles.h"

#include <algorithm>
#include <vector>

#include "cluster/cluster.h"
#include "common/timer.h"
#include "graph/intersect.h"
#include "partition/partition.h"

namespace gal {
namespace {

/// Builds the degree-oriented adjacency: for each v, neighbors u with
/// (deg(u), u) > (deg(v), v), kept sorted by id. Orientation makes every
/// triangle counted exactly once and bounds out-degrees by O(sqrt(|E|))
/// on arbitrary graphs.
std::vector<std::vector<VertexId>> OrientByDegree(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<std::vector<VertexId>> out(n);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t dv = g.Degree(v);
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      const uint32_t du = g.Degree(u);
      if (du > dv || (du == dv && u > v)) out[v].push_back(u);
    });
  }
  return out;
}

/// Per-worker triangle/ops tally, padded to a cache line so concurrent
/// workers never share one — the ledger idiom; folded once at the end.
struct alignas(64) WorkerTally {
  uint64_t triangles = 0;
  uint64_t ops = 0;
};

}  // namespace

TriangleCountResult SerialTriangleCount(const Graph& g) {
  Timer timer;
  TriangleCountResult result;
  const std::vector<std::vector<VertexId>> oriented = OrientByDegree(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : oriented[v]) {
      result.triangles +=
          IntersectCount(oriented[v], oriented[u], &result.intersection_ops);
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

TriangleCountResult TaskTriangleCount(const Graph& g,
                                      const TaskEngineConfig& config) {
  Timer timer;
  TriangleCountResult result;
  const std::vector<std::vector<VertexId>> oriented = OrientByDegree(g);
  // One padded tally per engine thread; contention-free during the run,
  // folded after the engine drains.
  std::vector<WorkerTally> tallies(ResolveTaskThreads(config.num_threads));

  // Simulated-cluster attribution: make sure the runtime has a placement
  // for this graph (hash by default, or whatever a caller pre-installed),
  // then snapshot the ledger so the job's traffic is a clean delta.
  ClusterRuntime* cluster = config.cluster;
  const VertexPartition* parts = nullptr;
  TrafficSnapshot before;
  size_t clock_mark = 0;
  if (cluster != nullptr) {
    if (!cluster->has_partition() ||
        cluster->partition().assignment.size() != g.NumVertices()) {
      cluster->InstallPartition(HashPartition(g, cluster->num_workers()));
    }
    parts = &cluster->partition();
    before = cluster->ledger().Snapshot();
    clock_mark = cluster->clock().rounds();
  }

  std::vector<VertexId> tasks(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) tasks[v] = v;

  TaskEngine<VertexId> engine(config);
  result.task_stats = engine.Run(
      std::move(tasks), [&](VertexId& v, TaskEngine<VertexId>::Context& ctx) {
        WorkerTally& tally = tallies[ctx.thread_id()];
        if (parts != nullptr) {
          ctx.TouchPartition(parts->assignment[v],
                             oriented[v].size() * sizeof(VertexId));
        }
        for (VertexId u : oriented[v]) {
          if (parts != nullptr) {
            ctx.TouchPartition(parts->assignment[u],
                               oriented[u].size() * sizeof(VertexId));
          }
          tally.triangles +=
              IntersectCount(oriented[v], oriented[u], &tally.ops);
        }
      });
  for (const WorkerTally& tally : tallies) {
    result.triangles += tally.triangles;
    result.intersection_ops += tally.ops;
  }
  result.wall_seconds = timer.ElapsedSeconds();

  if (cluster != nullptr) {
    // Fold host-thread busy time onto simulated workers (thread t ran
    // worker t mod W) and close the job as one BSP round on the shared
    // clock.
    std::vector<double> worker_compute(cluster->num_workers(), 0.0);
    for (size_t t = 0; t < result.task_stats.busy_seconds.size(); ++t) {
      worker_compute[t % cluster->num_workers()] +=
          result.task_stats.busy_seconds[t];
    }
    const TrafficSnapshot after = cluster->ledger().Snapshot();
    const uint64_t cross_bytes = after.cross_bytes - before.cross_bytes;
    const uint64_t cross_msgs = after.cross_messages - before.cross_messages;
    cluster->clock().AdvanceRound(worker_compute, cross_bytes, cross_msgs);
    result.migrated_bytes = cross_bytes;
    result.data_touched_bytes =
        cross_bytes + (after.local_bytes - before.local_bytes);
    result.modeled_seconds = cluster->clock().SecondsSince(clock_mark);
  }
  return result;
}

}  // namespace gal
