#include "tlag/algos/triangles.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/timer.h"

namespace gal {
namespace {

/// Builds the degree-oriented adjacency: for each v, neighbors u with
/// (deg(u), u) > (deg(v), v), kept sorted by id. Orientation makes every
/// triangle counted exactly once and bounds out-degrees by O(sqrt(|E|))
/// on arbitrary graphs.
std::vector<std::vector<VertexId>> OrientByDegree(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<std::vector<VertexId>> out(n);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t dv = g.Degree(v);
    for (VertexId u : g.Neighbors(v)) {
      const uint32_t du = g.Degree(u);
      if (du > dv || (du == dv && u > v)) out[v].push_back(u);
    }
  }
  return out;
}

/// Sorted-merge intersection size; `ops` accumulates elements touched.
uint64_t IntersectCount(const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b, uint64_t& ops) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++ops;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

TriangleCountResult SerialTriangleCount(const Graph& g) {
  Timer timer;
  TriangleCountResult result;
  const std::vector<std::vector<VertexId>> oriented = OrientByDegree(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : oriented[v]) {
      result.triangles +=
          IntersectCount(oriented[v], oriented[u], result.intersection_ops);
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

TriangleCountResult TaskTriangleCount(const Graph& g,
                                      const TaskEngineConfig& config) {
  Timer timer;
  TriangleCountResult result;
  const std::vector<std::vector<VertexId>> oriented = OrientByDegree(g);
  std::atomic<uint64_t> triangles{0};
  std::atomic<uint64_t> ops{0};

  std::vector<VertexId> tasks(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) tasks[v] = v;

  TaskEngine<VertexId> engine(config);
  result.task_stats = engine.Run(
      std::move(tasks), [&](VertexId& v, TaskEngine<VertexId>::Context&) {
        uint64_t local_tri = 0;
        uint64_t local_ops = 0;
        for (VertexId u : oriented[v]) {
          local_tri += IntersectCount(oriented[v], oriented[u], local_ops);
        }
        triangles.fetch_add(local_tri, std::memory_order_relaxed);
        ops.fetch_add(local_ops, std::memory_order_relaxed);
      });
  result.triangles = triangles.load();
  result.intersection_ops = ops.load();
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gal
