#include "tlag/algos/subgraph_enum.h"

#include <algorithm>
#include <atomic>

#include "common/metrics.h"

namespace gal {
namespace {

/// Root task: enumerate all connected subgraphs whose minimum vertex is
/// `root` (ESU's uniqueness invariant: only vertices > root may join).
struct EnumTask {
  VertexId root;
};

struct EnumShared {
  const Graph* g;
  const SubgraphEnumOptions* options;
  const SubgraphVisitor* visitor;
  std::atomic<uint64_t> visited{0};
  MaxGauge peak_bytes;
};

/// Recursive ESU step. `subgraph` is the current set, `extension` the
/// candidate pool (all > root, adjacent to the subgraph, not yet seen),
/// `in_closure` marks vertices already in subgraph ∪ extension ∪
/// discarded (never to be re-added on this path).
void Extend(EnumShared& shared, std::vector<VertexId>& subgraph,
            std::vector<VertexId>& extension,
            std::vector<uint8_t>& in_closure) {
  const Graph& g = *shared.g;
  shared.visited.fetch_add(1, std::memory_order_relaxed);
  shared.peak_bytes.Observe(static_cast<int64_t>(
      (subgraph.size() + extension.size()) * sizeof(VertexId)));
  const bool keep_extending = (*shared.visitor)(subgraph);
  if (!keep_extending || subgraph.size() >= shared.options->max_size) return;

  // ESU: repeatedly remove a candidate w; the branch containing w uses
  // the remaining candidates plus w's exclusive new neighbors.
  std::vector<VertexId> pool = extension;
  while (!pool.empty()) {
    const VertexId w = pool.back();
    pool.pop_back();
    std::vector<VertexId> child_ext = pool;
    std::vector<VertexId> newly_closed;
    g.ForEachOutNeighbor(w, [&](VertexId u) {
      if (u <= subgraph.front()) return;  // root-minimality
      if (in_closure[u]) return;
      child_ext.push_back(u);
      in_closure[u] = 1;
      newly_closed.push_back(u);
    });
    subgraph.push_back(w);
    Extend(shared, subgraph, child_ext, in_closure);
    subgraph.pop_back();
    for (VertexId u : newly_closed) in_closure[u] = 0;
    // w never rejoins on this path: it stays in in_closure (it was
    // already marked when it entered the extension pool).
  }
}

}  // namespace

SubgraphEnumStats EnumerateConnectedSubgraphs(
    const Graph& g, const SubgraphEnumOptions& options,
    const SubgraphVisitor& visitor) {
  EnumShared shared;
  shared.g = &g;
  shared.options = &options;
  shared.visitor = &visitor;

  std::vector<EnumTask> roots;
  roots.reserve(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) roots.push_back({v});

  TaskEngine<EnumTask> engine(options.engine);
  TaskEngineStats task_stats = engine.Run(
      std::move(roots),
      [&shared, &g](EnumTask& task, TaskEngine<EnumTask>::Context&) {
        std::vector<uint8_t> in_closure(g.NumVertices(), 0);
        std::vector<VertexId> subgraph = {task.root};
        std::vector<VertexId> extension;
        in_closure[task.root] = 1;
        g.ForEachOutNeighbor(task.root, [&](VertexId u) {
          if (u > task.root) {
            extension.push_back(u);
            in_closure[u] = 1;
          }
        });
        Extend(shared, subgraph, extension, in_closure);
      });

  SubgraphEnumStats stats;
  stats.subgraphs_visited = shared.visited.load();
  stats.peak_state_bytes = static_cast<uint64_t>(shared.peak_bytes.Get());
  stats.task_stats = task_stats;
  return stats;
}

}  // namespace gal
