#include "tlag/algos/quasi_clique.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "tlag/algos/subgraph_enum.h"

namespace gal {
namespace {

uint32_t RequiredDegree(double gamma, size_t set_size) {
  return static_cast<uint32_t>(
      std::ceil(gamma * (static_cast<double>(set_size) - 1.0) - 1e-9));
}

}  // namespace

bool IsQuasiClique(const Graph& g, const std::vector<VertexId>& s,
                   double gamma) {
  if (s.empty()) return false;
  const uint32_t required = RequiredDegree(gamma, s.size());
  for (VertexId v : s) {
    uint32_t inside = 0;
    for (VertexId u : s) {
      if (u != v && g.HasEdge(v, u)) ++inside;
    }
    if (inside < required) return false;
  }
  return true;
}

QuasiCliqueResult FindQuasiCliques(const Graph& g,
                                   const QuasiCliqueOptions& options) {
  // γ >= 0.5 guarantees quasi-cliques are connected (standard in Quick /
  // G-thinker), which the connected-subgraph enumeration relies on.
  GAL_CHECK(options.gamma >= 0.5 && options.gamma <= 1.0);
  GAL_CHECK(options.min_size >= 2 && options.min_size <= options.max_size);
  QuasiCliqueResult result;
  std::mutex out_mu;
  std::atomic<uint64_t> examined{0};
  std::atomic<uint64_t> pruned{0};

  SubgraphEnumOptions enum_options;
  enum_options.max_size = options.max_size;
  enum_options.engine = options.engine;

  // The weakest requirement any completed set will face is at
  // |S| = min_size; a member that cannot reach it even if *every*
  // remaining slot is filled with its neighbors is hopeless.
  const uint32_t weakest_required =
      RequiredDegree(options.gamma, options.min_size);

  SubgraphEnumStats stats = EnumerateConnectedSubgraphs(
      g, enum_options, [&](const std::vector<VertexId>& s) -> bool {
        examined.fetch_add(1, std::memory_order_relaxed);
        // Count internal degrees once.
        uint32_t min_inside = g.NumVertices();
        for (VertexId v : s) {
          uint32_t inside = 0;
          for (VertexId u : s) {
            if (u != v && g.HasEdge(v, u)) ++inside;
          }
          min_inside = std::min(min_inside, inside);
        }
        if (s.size() >= options.min_size &&
            min_inside >= RequiredDegree(options.gamma, s.size())) {
          std::vector<VertexId> sorted = s;
          std::sort(sorted.begin(), sorted.end());
          std::lock_guard<std::mutex> lock(out_mu);
          result.quasi_cliques.push_back(std::move(sorted));
        }
        // Deficiency bound: even gaining one inside-neighbor per future
        // addition, the weakest member cannot meet the laxest target.
        const uint32_t slack =
            options.max_size - static_cast<uint32_t>(s.size());
        if (min_inside + slack < weakest_required) {
          pruned.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        return true;
      });

  result.sets_examined = examined.load();
  result.pruned_branches = pruned.load();
  result.task_stats = stats.task_stats;
  std::sort(result.quasi_cliques.begin(), result.quasi_cliques.end());
  return result;
}

}  // namespace gal
