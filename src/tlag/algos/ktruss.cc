#include "tlag/algos/ktruss.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"
#include "graph/intersect.h"

namespace gal {
namespace {

/// Edge index lookup for (u, v) with u < v.
struct EdgeIndex {
  std::map<std::pair<VertexId, VertexId>, uint32_t> index;

  uint32_t Of(VertexId u, VertexId v) const {
    if (u > v) std::swap(u, v);
    auto it = index.find({u, v});
    GAL_DCHECK(it != index.end());
    return it->second;
  }
};

}  // namespace

KTrussResult KTrussDecomposition(const Graph& g) {
  KTrussResult result;
  result.edges = g.CollectEdges();
  const uint32_t m = static_cast<uint32_t>(result.edges.size());
  result.trussness.assign(m, 2);
  if (m == 0) return result;

  EdgeIndex idx;
  for (uint32_t e = 0; e < m; ++e) {
    idx.index[{result.edges[e].src, result.edges[e].dst}] = e;
  }

  // Initial supports: triangles through each edge, via the shared
  // sorted intersection (graph-row form: decodes through `scratch` when
  // the adjacency is compressed, zero-copy otherwise).
  NeighborScratch scratch;
  std::vector<uint32_t> support(m, 0);
  for (uint32_t e = 0; e < m; ++e) {
    support[e] = static_cast<uint32_t>(
        IntersectCount(g, result.edges[e].src, result.edges[e].dst, scratch));
  }

  // Peel edges in increasing support; when edge (u,v) is removed, the
  // supports of the other two edges of each triangle through it drop.
  std::vector<uint8_t> removed(m, 0);
  using Item = std::pair<uint32_t, uint32_t>;  // (support, edge)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (uint32_t e = 0; e < m; ++e) pq.push({support[e], e});

  uint32_t k = 2;
  std::vector<VertexId> common;  // scratch, reused across peels
  while (!pq.empty()) {
    auto [s, e] = pq.top();
    pq.pop();
    if (removed[e] || s != support[e]) continue;  // stale entry
    k = std::max(k, support[e] + 2);
    result.trussness[e] = k;
    result.max_trussness = std::max(result.max_trussness, k);
    removed[e] = 1;

    const VertexId u = result.edges[e].src;
    const VertexId v = result.edges[e].dst;
    IntersectInto(g.NeighborsInto(u, scratch.a), g, v, common, scratch);
    for (const VertexId w : common) {
      const uint32_t e1 = idx.Of(u, w);
      const uint32_t e2 = idx.Of(v, w);
      if (!removed[e1] && !removed[e2]) {
        // The triangle (u,v,w) disappears with e.
        for (uint32_t other : {e1, e2}) {
          GAL_DCHECK(support[other] > 0);
          --support[other];
          ++result.support_updates;
          pq.push({support[other], other});
        }
      }
    }
  }

  if (g.IsReordered()) {
    // Report edges in the caller's original id space (normalized
    // src < dst, like CollectEdges on an unordered build).
    for (Edge& edge : result.edges) {
      edge.src = g.OriginalId(edge.src);
      edge.dst = g.OriginalId(edge.dst);
      if (edge.src > edge.dst) std::swap(edge.src, edge.dst);
    }
  }
  return result;
}

std::vector<VertexId> KTrussVertices(const Graph& g, uint32_t k) {
  KTrussResult decomposition = KTrussDecomposition(g);
  std::vector<uint8_t> in(g.NumVertices(), 0);
  for (uint32_t e = 0; e < decomposition.edges.size(); ++e) {
    if (decomposition.trussness[e] >= k) {
      in[decomposition.edges[e].src] = 1;
      in[decomposition.edges[e].dst] = 1;
    }
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (in[v]) out.push_back(v);
  }
  return out;
}

}  // namespace gal
