#include "tlag/algos/ktruss.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"

namespace gal {
namespace {

/// Edge index lookup for (u, v) with u < v.
struct EdgeIndex {
  std::map<std::pair<VertexId, VertexId>, uint32_t> index;

  uint32_t Of(VertexId u, VertexId v) const {
    if (u > v) std::swap(u, v);
    auto it = index.find({u, v});
    GAL_DCHECK(it != index.end());
    return it->second;
  }
};

}  // namespace

KTrussResult KTrussDecomposition(const Graph& g) {
  KTrussResult result;
  result.edges = g.CollectEdges();
  const uint32_t m = static_cast<uint32_t>(result.edges.size());
  result.trussness.assign(m, 2);
  if (m == 0) return result;

  EdgeIndex idx;
  for (uint32_t e = 0; e < m; ++e) {
    idx.index[{result.edges[e].src, result.edges[e].dst}] = e;
  }

  // Initial supports: triangles through each edge, via sorted
  // intersections.
  std::vector<uint32_t> support(m, 0);
  for (uint32_t e = 0; e < m; ++e) {
    const auto nu = g.Neighbors(result.edges[e].src);
    const auto nv = g.Neighbors(result.edges[e].dst);
    size_t i = 0;
    size_t j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        ++support[e];
        ++i;
        ++j;
      }
    }
  }

  // Peel edges in increasing support; when edge (u,v) is removed, the
  // supports of the other two edges of each triangle through it drop.
  std::vector<uint8_t> removed(m, 0);
  using Item = std::pair<uint32_t, uint32_t>;  // (support, edge)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (uint32_t e = 0; e < m; ++e) pq.push({support[e], e});

  uint32_t k = 2;
  while (!pq.empty()) {
    auto [s, e] = pq.top();
    pq.pop();
    if (removed[e] || s != support[e]) continue;  // stale entry
    k = std::max(k, support[e] + 2);
    result.trussness[e] = k;
    result.max_trussness = std::max(result.max_trussness, k);
    removed[e] = 1;

    const VertexId u = result.edges[e].src;
    const VertexId v = result.edges[e].dst;
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    size_t i = 0;
    size_t j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        const VertexId w = nu[i];
        const uint32_t e1 = idx.Of(u, w);
        const uint32_t e2 = idx.Of(v, w);
        if (!removed[e1] && !removed[e2]) {
          // The triangle (u,v,w) disappears with e.
          for (uint32_t other : {e1, e2}) {
            GAL_DCHECK(support[other] > 0);
            --support[other];
            ++result.support_updates;
            pq.push({support[other], other});
          }
        }
        ++i;
        ++j;
      }
    }
  }
  return result;
}

std::vector<VertexId> KTrussVertices(const Graph& g, uint32_t k) {
  KTrussResult decomposition = KTrussDecomposition(g);
  std::vector<uint8_t> in(g.NumVertices(), 0);
  for (uint32_t e = 0; e < decomposition.edges.size(); ++e) {
    if (decomposition.trussness[e] >= k) {
      in[decomposition.edges[e].src] = 1;
      in[decomposition.edges[e].dst] = 1;
    }
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (in[v]) out.push_back(v);
  }
  return out;
}

}  // namespace gal
