#ifndef GAL_TLAG_BFS_ENGINE_H_
#define GAL_TLAG_BFS_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// A partial subgraph instance: the vertex sequence in extension order.
using Embedding = std::vector<VertexId>;

/// What the BFS-extension engine should do when the materialized
/// frontier exceeds the memory budget — the design axis separating the
/// surveyed systems:
///   kStrict    — fail (a GPU system without host buffering, e.g. GSI
///                on an oversized input);
///   kSpill     — keep going but account the overflow as spilled to host
///                memory (G2-AIMD's host-memory subgraph buffering);
///   kHybridDfs — finish the affected embeddings by depth-first
///                extension, bounding memory (EGSM's BFS->DFS fallback).
enum class MemoryPolicy : uint8_t { kStrict, kSpill, kHybridDfs };

struct BfsEngineConfig {
  /// Extension proceeds chunk-by-chunk over the frontier (G2-AIMD's
  /// chunking) so a single level never needs the full cross product.
  uint64_t chunk_size = 1u << 16;
  /// Budget for materialized embeddings, in bytes (0 = unlimited).
  uint64_t memory_budget_bytes = 0;
  MemoryPolicy policy = MemoryPolicy::kSpill;
};

struct BfsEngineStats {
  uint64_t embeddings_generated = 0;   // across all levels
  uint64_t peak_materialized = 0;      // embeddings held at once
  /// Peak *resident* footprint. Spilled embeddings live in host memory
  /// and count toward spilled_bytes instead, so under kSpill this stays
  /// within the budget (plus the root level if that alone exceeds it).
  uint64_t peak_bytes = 0;
  uint64_t spilled_bytes = 0;          // overflow beyond the budget
  uint64_t dfs_fallback_embeddings = 0;  // finished depth-first (hybrid)
  bool budget_exceeded = false;        // kStrict abort flag
};

/// Think-like-a-graph engine that grows subgraph instances
/// breadth-first: level k holds every valid embedding of size k, and
/// level k+1 is produced by extending each of them. This is the
/// Arabesque/RStream/Pangolin execution model; its defining cost — the
/// exponentially growing materialized frontier — is exactly what the
/// stats expose (and what bench_bfs_vs_dfs measures against the DFS
/// task engine).
class BfsExtensionEngine {
 public:
  /// Produces the candidate vertices extending `e`; must generate each
  /// *set* of vertices exactly once across orderings (canonical
  /// extension), e.g. "neighbors greater than the last vertex" for
  /// cliques.
  using ExtendFn =
      std::function<void(const Embedding& e, std::vector<VertexId>& out)>;
  /// Called for every embedding of target size.
  using OutputFn = std::function<void(const Embedding& e)>;

  explicit BfsExtensionEngine(BfsEngineConfig config) : config_(config) {}

  /// Grows from `roots` (size-1 embeddings) to `target_size`, invoking
  /// `output` on every embedding that reaches it. Returns run stats;
  /// with kStrict policy the run stops early once the budget trips
  /// (stats.budget_exceeded is set).
  BfsEngineStats Run(const std::vector<VertexId>& roots, uint32_t target_size,
                     const ExtendFn& extend, const OutputFn& output);

 private:
  /// Depth-first completion of one embedding (hybrid fallback).
  void DfsComplete(Embedding& e, uint32_t target_size, const ExtendFn& extend,
                   const OutputFn& output, BfsEngineStats& stats);

  BfsEngineConfig config_;
};

}  // namespace gal

#endif  // GAL_TLAG_BFS_ENGINE_H_
