#ifndef GAL_NN_GAT_H_
#define GAL_NN_GAT_H_

#include <vector>

#include "graph/graph.h"
#include "nn/gcn.h"
#include "tensor/matrix.h"

namespace gal {

/// A single-head Graph Attention Network (the "GAT" the survey names
/// alongside GCN). Layer l computes
///
///   z_i = W h_i
///   e_ij = LeakyReLU(a_src · z_i + a_dst · z_j)   for j in N(i) ∪ {i}
///   α_ij = softmax_j(e_ij)
///   h'_i = σ(Σ_j α_ij z_j)
///
/// Parameters per layer: W (d_in x d_out), a_src and a_dst (1 x d_out).
/// The backward pass is hand-derived (softmax-over-neighbors included)
/// and validated by a finite-difference test. Attention needs edge
/// identities, so the model binds to a Graph rather than the generic
/// AggregateFn hook.
class GatModel {
 public:
  /// `graph` must outlive the model.
  GatModel(const Graph* graph, const GcnConfig& config);

  uint32_t num_layers() const { return static_cast<uint32_t>(weights_.size()); }
  /// Parameters in order: W_0, a_src_0, a_dst_0, W_1, ...
  std::vector<Matrix*> Parameters();
  std::vector<Matrix>& mutable_weights() { return weights_; }
  std::vector<Matrix>& mutable_attn_src() { return attn_src_; }
  std::vector<Matrix>& mutable_attn_dst() { return attn_dst_; }

  Matrix Forward(const Matrix& features);
  /// Returns gradients aligned with Parameters().
  std::vector<Matrix> Backward(const Matrix& grad_logits);

  /// Attention weights of layer l from the last Forward: row-aligned
  /// with AdjacencyOf(i) = {i} ∪ N(i) in (self, sorted-neighbor) order.
  const std::vector<std::vector<float>>& attention(uint32_t layer) const {
    return alpha_[layer];
  }

 private:
  /// Builds the transposed attention-slot index (lazily, once): for each
  /// destination vertex t, the list of (source i, slot j) pairs with
  /// target(i, j) == t, sorted by source. The backward pass gathers over
  /// it so each dz row is written by exactly one shard — the same
  /// transposed-CSR trick the SpMM backward uses.
  void EnsureInEdgeCache();

  const Graph* graph_;
  float leaky_slope_ = 0.2f;
  std::vector<Matrix> weights_;    // d_in x d_out
  std::vector<Matrix> attn_src_;   // 1 x d_out
  std::vector<Matrix> attn_dst_;   // 1 x d_out

  // Forward caches (per layer).
  std::vector<Matrix> inputs_;                       // H_{l-1}
  std::vector<Matrix> z_;                            // H_{l-1} W_l
  std::vector<std::vector<std::vector<float>>> alpha_;   // attention
  std::vector<std::vector<std::vector<float>>> e_raw_;   // pre-LeakyReLU
  std::vector<Matrix> relu_masks_;

  // Transposed attention-slot index (see EnsureInEdgeCache). Slot (i, j)
  // of the flattened per-source layout lives at slot_offsets_[i] + j.
  std::vector<uint64_t> slot_offsets_;    // n + 1
  std::vector<uint64_t> in_edge_offsets_; // n + 1, by destination
  std::vector<VertexId> in_edge_src_;     // source vertex i
  std::vector<uint32_t> in_edge_slot_;    // slot j within i's row
};

/// Training driver mirroring TrainNodeClassifier.
TrainReport TrainGatClassifier(GatModel& model, const Matrix& features,
                               const std::vector<int32_t>& labels,
                               const std::vector<uint8_t>& train_mask,
                               const std::vector<uint8_t>& test_mask,
                               const TrainConfig& config);

}  // namespace gal

#endif  // GAL_NN_GAT_H_
