#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace gal {

void Sgd::Step(const std::vector<Matrix>& grads) {
  GAL_CHECK(grads.size() == params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i]->AddScaled(grads[i], -lr_);
  }
}

void Adam::Attach(std::vector<Matrix*> params) {
  Optimizer::Attach(std::move(params));
  m_.clear();
  v_.clear();
  for (Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
  t_ = 0;
}

void Adam::Step(const std::vector<Matrix>& grads) {
  GAL_CHECK(grads.size() == params_.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<float>& p = params_[i]->data();
    std::vector<float>& m = m_[i].data();
    std::vector<float>& v = v_[i].data();
    const std::vector<float>& g = grads[i].data();
    GAL_CHECK(g.size() == p.size());
    for (size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace gal
