#include "nn/sage_concat.h"

#include <memory>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "tensor/kernel_context.h"

namespace gal {
namespace {

/// [A ; B] column-wise concatenation (same row count). Row-parallel on
/// the shared kernel pool — pure copies, so order-independent.
Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.rows() == b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  KernelContext::Get().ParallelFor1D(
      a.rows(), out.cols(), [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          float* dst = out.row(static_cast<uint32_t>(r));
          const float* ar = a.row(static_cast<uint32_t>(r));
          const float* br = b.row(static_cast<uint32_t>(r));
          std::copy(ar, ar + a.cols(), dst);
          std::copy(br, br + b.cols(), dst + a.cols());
        }
      });
  return out;
}

/// Splits dC into the gradients of the two concatenated halves.
void SplitCols(const Matrix& dc, uint32_t left_cols, Matrix* dleft,
               Matrix* dright) {
  *dleft = Matrix(dc.rows(), left_cols);
  *dright = Matrix(dc.rows(), dc.cols() - left_cols);
  KernelContext::Get().ParallelFor1D(
      dc.rows(), dc.cols(), [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const float* src = dc.row(static_cast<uint32_t>(r));
          std::copy(src, src + left_cols,
                    dleft->row(static_cast<uint32_t>(r)));
          std::copy(src + left_cols, src + dc.cols(),
                    dright->row(static_cast<uint32_t>(r)));
        }
      });
}

}  // namespace

SageConcatModel::SageConcatModel(const GcnConfig& config) {
  GAL_CHECK(config.dims.size() >= 2);
  Rng rng(config.seed);
  for (size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        Matrix::Xavier(2 * config.dims[l], config.dims[l + 1], rng));
  }
}

std::vector<Matrix*> SageConcatModel::Parameters() {
  std::vector<Matrix*> params;
  for (Matrix& w : weights_) params.push_back(&w);
  return params;
}

Matrix SageConcatModel::Forward(const Matrix& features,
                                const AggregateFn& aggregate) {
  concat_inputs_.clear();
  relu_masks_.clear();
  Matrix h = features;
  for (uint32_t l = 0; l < num_layers(); ++l) {
    Matrix neighborhood = aggregate(h, l, /*backward=*/false);
    Matrix concat = ConcatCols(h, neighborhood);
    Matrix z = Matmul(concat, weights_[l]);
    concat_inputs_.push_back(std::move(concat));
    if (l + 1 < num_layers()) {
      Matrix mask;
      h = ReluForward(z, &mask);
      relu_masks_.push_back(std::move(mask));
    } else {
      h = std::move(z);
    }
  }
  return h;
}

std::vector<Matrix> SageConcatModel::Backward(const Matrix& grad_logits,
                                              const AggregateFn& aggregate) {
  GAL_CHECK(concat_inputs_.size() == num_layers()) << "Forward must run first";
  std::vector<Matrix> grads(num_layers());
  Matrix dz = grad_logits;
  for (uint32_t l = num_layers(); l-- > 0;) {
    grads[l] = MatmulTransposeA(concat_inputs_[l], dz);
    if (l == 0) break;
    Matrix dconcat = MatmulTransposeB(dz, weights_[l]);
    const uint32_t in_cols = concat_inputs_[l].cols() / 2;
    Matrix dh_self;
    Matrix dh_neigh;
    SplitCols(dconcat, in_cols, &dh_self, &dh_neigh);
    // dH_{l-1} = dSelf + Agg^T(dNeighborhood).
    Matrix dh = aggregate(dh_neigh, l, /*backward=*/true);
    dh.AddScaled(dh_self, 1.0f);
    dz = ReluBackward(dh, relu_masks_[l - 1]);
  }
  return grads;
}

TrainReport TrainSageConcatClassifier(SageConcatModel& model,
                                      const Matrix& features,
                                      const std::vector<int32_t>& labels,
                                      const std::vector<uint8_t>& train_mask,
                                      const std::vector<uint8_t>& test_mask,
                                      const AggregateFn& aggregate,
                                      const TrainConfig& config) {
  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = std::make_unique<Adam>(config.lr);
  } else {
    opt = std::make_unique<Sgd>(config.lr);
  }
  opt->Attach(model.Parameters());

  TrainReport report;
  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix logits = model.Forward(features, aggregate);
    SoftmaxXentResult train = SoftmaxCrossEntropy(logits, labels, train_mask);
    std::vector<Matrix> grads = model.Backward(train.grad, aggregate);
    if (config.weight_decay > 0.0f) {
      std::vector<Matrix*> params = model.Parameters();
      for (size_t i = 0; i < grads.size(); ++i) {
        grads[i].AddScaled(*params[i], config.weight_decay);
      }
    }
    opt->Step(grads);

    SoftmaxXentResult test = SoftmaxCrossEntropy(logits, labels, test_mask);
    EpochMetrics m;
    m.loss = train.loss;
    m.train_accuracy =
        train.total ? static_cast<double>(train.correct) / train.total : 0.0;
    m.test_accuracy =
        test.total ? static_cast<double>(test.correct) / test.total : 0.0;
    report.epochs.push_back(m);
  }
  Matrix logits = model.Forward(features, aggregate);
  SoftmaxXentResult test = SoftmaxCrossEntropy(logits, labels, test_mask);
  report.final_test_accuracy =
      test.total ? static_cast<double>(test.correct) / test.total : 0.0;
  return report;
}

}  // namespace gal
