#include "nn/gat.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "tensor/kernel_context.h"

namespace gal {
namespace {

float LeakyRelu(float x, float slope) { return x > 0 ? x : slope * x; }
float LeakyReluGrad(float x, float slope) { return x > 0 ? 1.0f : slope; }

float Dot(const float* a, const float* b, uint32_t d) {
  float s = 0;
  for (uint32_t i = 0; i < d; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

GatModel::GatModel(const Graph* graph, const GcnConfig& config)
    : graph_(graph) {
  GAL_CHECK(config.dims.size() >= 2);
  Rng rng(config.seed);
  for (size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        Matrix::Xavier(config.dims[l], config.dims[l + 1], rng));
    attn_src_.push_back(Matrix::Xavier(1, config.dims[l + 1], rng));
    attn_dst_.push_back(Matrix::Xavier(1, config.dims[l + 1], rng));
  }
}

std::vector<Matrix*> GatModel::Parameters() {
  std::vector<Matrix*> params;
  for (uint32_t l = 0; l < num_layers(); ++l) {
    params.push_back(&weights_[l]);
    params.push_back(&attn_src_[l]);
    params.push_back(&attn_dst_[l]);
  }
  return params;
}

Matrix GatModel::Forward(const Matrix& features) {
  const VertexId n = graph_->NumVertices();
  GAL_CHECK(features.rows() == n);
  inputs_.clear();
  z_.clear();
  alpha_.assign(num_layers(), {});
  e_raw_.assign(num_layers(), {});
  relu_masks_.clear();

  Matrix h = features;
  for (uint32_t l = 0; l < num_layers(); ++l) {
    inputs_.push_back(h);
    Matrix z = Matmul(h, weights_[l]);
    const uint32_t d = z.cols();
    const float* a_src = attn_src_[l].row(0);
    const float* a_dst = attn_dst_[l].row(0);

    KernelContext& ctx = KernelContext::Get();

    // Per-vertex source/destination attention scalars.
    std::vector<float> src_score(n);
    std::vector<float> dst_score(n);
    ctx.ParallelFor1D(n, 2 * uint64_t{d}, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        src_score[v] = Dot(z.row(static_cast<VertexId>(v)), a_src, d);
        dst_score[v] = Dot(z.row(static_cast<VertexId>(v)), a_dst, d);
      }
    });

    alpha_[l].assign(n, {});
    e_raw_[l].assign(n, {});
    Matrix out(n, d);
    // Each vertex writes only its own out/alpha/e_raw rows, so the
    // attention aggregation parallelizes without races.
    const uint64_t avg_fan =
        1 + graph_->NumAdjacencyEntries() / std::max<uint64_t>(1, n);
    ctx.ParallelFor1D(n, avg_fan * d, [&](size_t v_begin, size_t v_end) {
    // Shard-local adjacency decode buffer (compressed layouts).
    std::vector<VertexId> nbr_scratch;
    for (VertexId i = static_cast<VertexId>(v_begin);
         i < static_cast<VertexId>(v_end); ++i) {
      const auto nbrs = graph_->NeighborsInto(i, nbr_scratch);
      const size_t fan = nbrs.size() + 1;  // self first
      std::vector<float>& raw = e_raw_[l][i];
      std::vector<float>& att = alpha_[l][i];
      raw.resize(fan);
      att.resize(fan);
      raw[0] = src_score[i] + dst_score[i];
      for (size_t j = 0; j < nbrs.size(); ++j) {
        raw[j + 1] = src_score[i] + dst_score[nbrs[j]];
      }
      // Softmax over LeakyReLU(raw).
      float mx = -1e30f;
      for (size_t j = 0; j < fan; ++j) {
        att[j] = LeakyRelu(raw[j], leaky_slope_);
        mx = std::max(mx, att[j]);
      }
      float sum = 0;
      for (size_t j = 0; j < fan; ++j) {
        att[j] = std::exp(att[j] - mx);
        sum += att[j];
      }
      float* oi = out.row(i);
      for (size_t j = 0; j < fan; ++j) {
        att[j] /= sum;
        const float* zj = z.row(j == 0 ? i : nbrs[j - 1]);
        for (uint32_t c = 0; c < d; ++c) oi[c] += att[j] * zj[c];
      }
    }
    });
    z_.push_back(std::move(z));
    if (l + 1 < num_layers()) {
      Matrix mask;
      h = ReluForward(out, &mask);
      relu_masks_.push_back(std::move(mask));
    } else {
      h = std::move(out);
    }
  }
  return h;
}

void GatModel::EnsureInEdgeCache() {
  if (!in_edge_offsets_.empty()) return;
  const VertexId n = graph_->NumVertices();
  slot_offsets_.assign(n + 1, 0);
  std::vector<uint64_t> indeg(n, 0);
  for (VertexId i = 0; i < n; ++i) {
    slot_offsets_[i + 1] = slot_offsets_[i] + graph_->Degree(i) + 1;
    ++indeg[i];  // the self slot targets i
    graph_->ForEachOutNeighbor(i, [&](VertexId t) { ++indeg[t]; });
  }
  in_edge_offsets_.assign(n + 1, 0);
  for (VertexId t = 0; t < n; ++t) {
    in_edge_offsets_[t + 1] = in_edge_offsets_[t] + indeg[t];
  }
  const uint64_t total = in_edge_offsets_[n];
  in_edge_src_.resize(total);
  in_edge_slot_.resize(total);
  std::vector<uint64_t> cursor(in_edge_offsets_.begin(),
                               in_edge_offsets_.end() - 1);
  // Ascending source order keeps every destination's in-edge list sorted
  // by (source, slot), fixing the gather's accumulation order for any
  // thread count.
  for (VertexId i = 0; i < n; ++i) {
    in_edge_src_[cursor[i]] = i;
    in_edge_slot_[cursor[i]] = 0;
    ++cursor[i];
    uint32_t j = 0;
    graph_->ForEachOutNeighbor(i, [&](VertexId t) {
      in_edge_src_[cursor[t]] = i;
      in_edge_slot_[cursor[t]] = j + 1;
      ++j;
      ++cursor[t];
    });
  }
}

std::vector<Matrix> GatModel::Backward(const Matrix& grad_logits) {
  GAL_CHECK(inputs_.size() == num_layers()) << "Forward must run first";
  const VertexId n = graph_->NumVertices();
  std::vector<Matrix> grads(3 * num_layers());
  EnsureInEdgeCache();

  KernelContext& ctx = KernelContext::Get();
  const uint64_t avg_fan =
      1 + graph_->NumAdjacencyEntries() / std::max<uint64_t>(1, n);
  // Per-slot softmax-backward coefficients de_ij of the current layer,
  // in the flattened per-source layout; phase 2 reads them transposed.
  std::vector<float> de(slot_offsets_[n]);
  std::vector<float> rowsum_de(n);   // Σ_j de_ij, per source
  std::vector<float> insum_de(n);    // Σ in-edges de, per destination

  Matrix ds = grad_logits;  // dL/d(pre-activation aggregate) of layer l
  for (uint32_t l = num_layers(); l-- > 0;) {
    const Matrix& z = z_[l];
    const uint32_t d = z.cols();
    const float* a_src = attn_src_[l].row(0);
    const float* a_dst = attn_dst_[l].row(0);

    Matrix dz(n, d);
    Matrix da_src(1, d);
    Matrix da_dst(1, d);

    // The attention-path gradient scatters into dz rows of neighboring
    // vertices, which would race under vertex sharding — so it runs as a
    // two-phase gather instead. Phase 1 (parallel over sources) computes
    // the per-slot coefficients de_ij = LeakyReLU'(raw) α (dα − Σ α dα)
    // and the source-local a_src path dz_i += (Σ_j de_ij) a_src; each
    // shard writes only its own rows.
    ctx.ParallelFor1D(n, (2 * avg_fan + 2) * d, [&](size_t v_begin,
                                                    size_t v_end) {
      std::vector<float> dalpha;
      std::vector<VertexId> nbr_scratch;
      for (VertexId i = static_cast<VertexId>(v_begin);
           i < static_cast<VertexId>(v_end); ++i) {
        const auto nbrs = graph_->NeighborsInto(i, nbr_scratch);
        const size_t fan = nbrs.size() + 1;
        const std::vector<float>& att = alpha_[l][i];
        const std::vector<float>& raw = e_raw_[l][i];
        const float* dsi = ds.row(i);

        // dα_ij = ds_i · z_j; softmax backward: de = α (dα − Σ α dα).
        dalpha.resize(fan);
        float weighted = 0;
        for (size_t j = 0; j < fan; ++j) {
          dalpha[j] = Dot(dsi, z.row(j == 0 ? i : nbrs[j - 1]), d);
          weighted += att[j] * dalpha[j];
        }
        float* de_row = de.data() + slot_offsets_[i];
        float rs = 0;
        for (size_t j = 0; j < fan; ++j) {
          float v = att[j] * (dalpha[j] - weighted);
          v *= LeakyReluGrad(raw[j], leaky_slope_);
          de_row[j] = v;
          rs += v;
        }
        rowsum_de[i] = rs;
        float* dzi = dz.row(i);
        for (uint32_t c = 0; c < d; ++c) dzi[c] += rs * a_src[c];
      }
    });

    // Phase 2 (parallel over destinations): gather the value path
    // dz_t += α_ij ds_i and the a_dst path dz_t += de_ij a_dst over t's
    // in-edge list. One shard owns each dz row and walks the list in its
    // fixed (source, slot) order, so results are bit-identical at every
    // thread count.
    ctx.ParallelFor1D(n, (2 * avg_fan + 2) * d, [&](size_t v_begin,
                                                    size_t v_end) {
      for (VertexId t = static_cast<VertexId>(v_begin);
           t < static_cast<VertexId>(v_end); ++t) {
        float* dzt = dz.row(t);
        float st = 0;
        for (uint64_t e = in_edge_offsets_[t]; e < in_edge_offsets_[t + 1];
             ++e) {
          const VertexId i = in_edge_src_[e];
          const uint32_t j = in_edge_slot_[e];
          const float a = alpha_[l][i][j];
          const float dev = de[slot_offsets_[i] + j];
          const float* dsi = ds.row(i);
          for (uint32_t c = 0; c < d; ++c) {
            dzt[c] += a * dsi[c] + dev * a_dst[c];
          }
          st += dev;
        }
        insum_de[t] = st;
      }
    });

    // Attention-vector gradients collapse to rank-1 reductions over the
    // per-vertex de sums: da_src = Σ_i (Σ_j de_ij) z_i and
    // da_dst = Σ_t (Σ_in de) z_t. O(n·d), serial, fixed order.
    float* das = da_src.row(0);
    float* dad = da_dst.row(0);
    for (VertexId v = 0; v < n; ++v) {
      const float* zv = z.row(v);
      const float rs = rowsum_de[v];
      const float is = insum_de[v];
      for (uint32_t c = 0; c < d; ++c) {
        das[c] += rs * zv[c];
        dad[c] += is * zv[c];
      }
    }

    grads[3 * l] = MatmulTransposeA(inputs_[l], dz);  // dW
    grads[3 * l + 1] = std::move(da_src);
    grads[3 * l + 2] = std::move(da_dst);
    if (l == 0) break;
    Matrix dh = MatmulTransposeB(dz, weights_[l]);
    ds = ReluBackward(dh, relu_masks_[l - 1]);
  }
  return grads;
}

TrainReport TrainGatClassifier(GatModel& model, const Matrix& features,
                               const std::vector<int32_t>& labels,
                               const std::vector<uint8_t>& train_mask,
                               const std::vector<uint8_t>& test_mask,
                               const TrainConfig& config) {
  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = std::make_unique<Adam>(config.lr);
  } else {
    opt = std::make_unique<Sgd>(config.lr);
  }
  opt->Attach(model.Parameters());

  TrainReport report;
  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix logits = model.Forward(features);
    SoftmaxXentResult train = SoftmaxCrossEntropy(logits, labels, train_mask);
    std::vector<Matrix> grads = model.Backward(train.grad);
    if (config.weight_decay > 0.0f) {
      std::vector<Matrix*> params = model.Parameters();
      for (size_t i = 0; i < grads.size(); ++i) {
        grads[i].AddScaled(*params[i], config.weight_decay);
      }
    }
    opt->Step(grads);

    SoftmaxXentResult test = SoftmaxCrossEntropy(logits, labels, test_mask);
    EpochMetrics m;
    m.loss = train.loss;
    m.train_accuracy =
        train.total ? static_cast<double>(train.correct) / train.total : 0.0;
    m.test_accuracy =
        test.total ? static_cast<double>(test.correct) / test.total : 0.0;
    report.epochs.push_back(m);
  }
  Matrix logits = model.Forward(features);
  SoftmaxXentResult test = SoftmaxCrossEntropy(logits, labels, test_mask);
  report.final_test_accuracy =
      test.total ? static_cast<double>(test.correct) / test.total : 0.0;
  return report;
}

}  // namespace gal
