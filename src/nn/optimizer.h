#ifndef GAL_NN_OPTIMIZER_H_
#define GAL_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gal {

/// Optimizer over a fixed set of parameter matrices. Step() consumes
/// gradients aligned index-for-index with the registered parameters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Registers the parameters once, before the first Step.
  virtual void Attach(std::vector<Matrix*> params) { params_ = std::move(params); }
  virtual void Step(const std::vector<Matrix>& grads) = 0;

 protected:
  std::vector<Matrix*> params_;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void Step(const std::vector<Matrix>& grads) override;

 private:
  float lr_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Attach(std::vector<Matrix*> params) override;
  void Step(const std::vector<Matrix>& grads) override;

  /// Checkpoint access for the elastic cluster runtime: the step count
  /// and moment estimates are part of trainer state, so rollback must
  /// restore them bit-exactly for replayed epochs to match.
  uint64_t step_count() const { return t_; }
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }
  void RestoreState(uint64_t t, std::vector<Matrix> m,
                    std::vector<Matrix> v) {
    t_ = t;
    m_ = std::move(m);
    v_ = std::move(v);
  }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  uint64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace gal

#endif  // GAL_NN_OPTIMIZER_H_
