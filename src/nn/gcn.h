#ifndef GAL_NN_GCN_H_
#define GAL_NN_GCN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gal {

/// The neighborhood-aggregation hook of a GCN layer. `layer` is the
/// 0-based layer index; `backward` distinguishes the forward gather
/// (Â·H) from the gradient scatter (Â^T·G). The distributed simulator
/// substitutes implementations that account bytes, quantize payloads or
/// serve stale rows — exactly the "graph data communication" stage of
/// the survey's GNN-system anatomy.
using AggregateFn =
    std::function<Matrix(const Matrix& h, uint32_t layer, bool backward)>;

/// Exact in-memory aggregation with the given operator.
AggregateFn ExactAggregator(const SparseMatrix* adj);

struct GcnConfig {
  std::vector<uint32_t> dims;  // e.g. {in, hidden, classes}
  uint64_t seed = 1;
};

/// A multi-layer graph convolutional network with hand-derived
/// backpropagation (GraphSAGE-mean is the same network under the
/// row-mean operator; the survey's layer equations specialize to
/// Z_l = Agg(H_{l-1}) W_l, H_l = σ(Z_l)).
class GcnModel {
 public:
  explicit GcnModel(const GcnConfig& config);

  uint32_t num_layers() const { return static_cast<uint32_t>(weights_.size()); }
  std::vector<Matrix*> Parameters();
  const std::vector<Matrix>& weights() const { return weights_; }
  std::vector<Matrix>& mutable_weights() { return weights_; }

  /// Forward pass; returns logits (rows = vertices of `features`).
  /// Caches activations for Backward.
  Matrix Forward(const Matrix& features, const AggregateFn& aggregate);

  /// Backward from dL/dlogits; returns per-weight gradients (aligned
  /// with Parameters()). Must follow a Forward with the same aggregate.
  std::vector<Matrix> Backward(const Matrix& grad_logits,
                               const AggregateFn& aggregate);

 private:
  std::vector<Matrix> weights_;        // weights_[l]: dims[l] x dims[l+1]
  // Forward caches.
  std::vector<Matrix> agg_inputs_;     // Agg(H_{l-1}) per layer
  std::vector<Matrix> relu_masks_;     // per non-final layer
};

/// One full training run of the model on a node-classification task.
struct TrainConfig {
  uint32_t epochs = 50;
  float lr = 0.05f;
  bool use_adam = true;
  /// L2 regularization strength (0 = off); added to every weight
  /// gradient as weight_decay * W.
  float weight_decay = 0.0f;
};

struct EpochMetrics {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

struct TrainReport {
  std::vector<EpochMetrics> epochs;
  double final_test_accuracy = 0.0;
};

/// Trains on rows with train_mask set; evaluates on test_mask rows.
TrainReport TrainNodeClassifier(GcnModel& model, const Matrix& features,
                                const std::vector<int32_t>& labels,
                                const std::vector<uint8_t>& train_mask,
                                const std::vector<uint8_t>& test_mask,
                                const AggregateFn& aggregate,
                                const TrainConfig& config);

}  // namespace gal

#endif  // GAL_NN_GCN_H_
