#include "nn/gcn.h"

#include <memory>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "tensor/kernel_context.h"

namespace gal {

AggregateFn ExactAggregator(const SparseMatrix* adj) {
  return [adj](const Matrix& h, uint32_t /*layer*/, bool backward) {
    return backward ? adj->TransposeMultiply(h) : adj->Multiply(h);
  };
}

GcnModel::GcnModel(const GcnConfig& config) {
  GAL_CHECK(config.dims.size() >= 2);
  Rng rng(config.seed);
  for (size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        Matrix::Xavier(config.dims[l], config.dims[l + 1], rng));
  }
}

std::vector<Matrix*> GcnModel::Parameters() {
  std::vector<Matrix*> params;
  for (Matrix& w : weights_) params.push_back(&w);
  return params;
}

Matrix GcnModel::Forward(const Matrix& features, const AggregateFn& aggregate) {
  agg_inputs_.clear();
  relu_masks_.clear();
  Matrix h = features;
  for (uint32_t l = 0; l < num_layers(); ++l) {
    Matrix agg = aggregate(h, l, /*backward=*/false);
    Matrix z = Matmul(agg, weights_[l]);
    agg_inputs_.push_back(std::move(agg));
    if (l + 1 < num_layers()) {
      Matrix mask;
      h = ReluForward(z, &mask);
      relu_masks_.push_back(std::move(mask));
    } else {
      h = std::move(z);  // logits
    }
  }
  return h;
}

std::vector<Matrix> GcnModel::Backward(const Matrix& grad_logits,
                                       const AggregateFn& aggregate) {
  GAL_CHECK(agg_inputs_.size() == num_layers()) << "Forward must run first";
  std::vector<Matrix> grads(num_layers());
  Matrix dz = grad_logits;
  for (uint32_t l = num_layers(); l-- > 0;) {
    // Z_l = Agg(H_{l-1}) W_l.
    grads[l] = MatmulTransposeA(agg_inputs_[l], dz);
    if (l == 0) break;
    Matrix dagg = MatmulTransposeB(dz, weights_[l]);  // dL/dAgg(H_{l-1})
    Matrix dh = aggregate(dagg, l, /*backward=*/true);
    dz = ReluBackward(dh, relu_masks_[l - 1]);
  }
  return grads;
}

TrainReport TrainNodeClassifier(GcnModel& model, const Matrix& features,
                                const std::vector<int32_t>& labels,
                                const std::vector<uint8_t>& train_mask,
                                const std::vector<uint8_t>& test_mask,
                                const AggregateFn& aggregate,
                                const TrainConfig& config) {
  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = std::make_unique<Adam>(config.lr);
  } else {
    opt = std::make_unique<Sgd>(config.lr);
  }
  opt->Attach(model.Parameters());

  // Pre-warm the shared kernel pool so worker spawn cost lands before
  // the first epoch, not inside it (same policy as the pipeline benches).
  KernelContext::Get();

  TrainReport report;
  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix logits = model.Forward(features, aggregate);
    SoftmaxXentResult train = SoftmaxCrossEntropy(logits, labels, train_mask);
    std::vector<Matrix> grads = model.Backward(train.grad, aggregate);
    if (config.weight_decay > 0.0f) {
      std::vector<Matrix*> params = model.Parameters();
      for (size_t i = 0; i < grads.size(); ++i) {
        grads[i].AddScaled(*params[i], config.weight_decay);
      }
    }
    opt->Step(grads);

    SoftmaxXentResult test = SoftmaxCrossEntropy(logits, labels, test_mask);
    EpochMetrics m;
    m.loss = train.loss;
    m.train_accuracy =
        train.total ? static_cast<double>(train.correct) / train.total : 0.0;
    m.test_accuracy =
        test.total ? static_cast<double>(test.correct) / test.total : 0.0;
    report.epochs.push_back(m);
  }
  // Final evaluation with trained weights.
  Matrix logits = model.Forward(features, aggregate);
  SoftmaxXentResult test = SoftmaxCrossEntropy(logits, labels, test_mask);
  report.final_test_accuracy =
      test.total ? static_cast<double>(test.correct) / test.total : 0.0;
  return report;
}

}  // namespace gal
