#ifndef GAL_NN_SAGE_CONCAT_H_
#define GAL_NN_SAGE_CONCAT_H_

#include <vector>

#include "nn/gcn.h"
#include "tensor/matrix.h"

namespace gal {

/// The GraphSAGE layer exactly as the survey writes it:
///
///   h_N(v)^k = AGGREGATE_k({h_u^{k-1} : u in N(v)})
///   h_v^k    = sigma(W^k · CONCAT(h_v^{k-1}, h_N(v)^k))
///
/// Unlike the GCN/SAGE-mean network (which folds the self vertex into
/// the aggregation), the concatenation keeps the vertex's own
/// representation in a separate channel — which is what lets the model
/// survive heterophilous neighborhoods where averaged neighbors are
/// noise. Weights are (2·d_in) x d_out per layer; gradients are
/// hand-derived and covered by a finite-difference test.
class SageConcatModel {
 public:
  /// dims = {in, hidden..., out}; one weight of shape (2*dims[l],
  /// dims[l+1]) per layer.
  explicit SageConcatModel(const GcnConfig& config);

  uint32_t num_layers() const { return static_cast<uint32_t>(weights_.size()); }
  std::vector<Matrix*> Parameters();
  std::vector<Matrix>& mutable_weights() { return weights_; }

  /// `aggregate` supplies AGGREGATE_k (mean over neighbors, sampled or
  /// exact — same hook as GcnModel, so the distributed policies apply).
  Matrix Forward(const Matrix& features, const AggregateFn& aggregate);
  std::vector<Matrix> Backward(const Matrix& grad_logits,
                               const AggregateFn& aggregate);

 private:
  std::vector<Matrix> weights_;
  // Forward caches.
  std::vector<Matrix> concat_inputs_;  // [H_{l-1} ; Agg(H_{l-1})]
  std::vector<Matrix> relu_masks_;
};

/// Same training driver as TrainNodeClassifier, for the concat model.
TrainReport TrainSageConcatClassifier(SageConcatModel& model,
                                      const Matrix& features,
                                      const std::vector<int32_t>& labels,
                                      const std::vector<uint8_t>& train_mask,
                                      const std::vector<uint8_t>& test_mask,
                                      const AggregateFn& aggregate,
                                      const TrainConfig& config);

}  // namespace gal

#endif  // GAL_NN_SAGE_CONCAT_H_
