#ifndef GAL_FSM_FSM_H_
#define GAL_FSM_FSM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/transaction_db.h"

namespace gal {

/// Frequent subgraph pattern mining, in both settings the survey
/// distinguishes: a single big graph (GraMi / ScaleMine / DistGraph /
/// T-FSM; MNI support) and a database of graph transactions
/// (gSpan / PrefixFPM; transaction-count support).

struct FrequentPattern {
  Graph pattern;
  uint32_t support = 0;
};

struct FsmStats {
  uint64_t patterns_evaluated = 0;   // support computations run
  uint64_t patterns_frequent = 0;
  uint64_t pruned_by_apriori = 0;    // children never evaluated
  uint64_t existence_checks = 0;     // single-graph only
  double wall_seconds = 0.0;
};

/// Which canonical form dedups the pattern lattice. Both are exact;
/// kMinDfsCode is the gSpan-lineage form, kPermutation the brute-force
/// minimum adjacency code. They must (and, per tests, do) agree.
enum class Canonicalization : uint8_t { kPermutation, kMinDfsCode };

struct SingleGraphFsmOptions {
  uint32_t min_support = 10;   // MNI threshold
  uint32_t max_edges = 4;      // pattern growth cap
  /// 0 = GAL_TASK_THREADS, else hardware_concurrency.
  uint32_t num_threads = 0;
  Canonicalization canonical = Canonicalization::kPermutation;
};

struct SingleGraphFsmResult {
  std::vector<FrequentPattern> patterns;
  FsmStats stats;
};

/// Mines all patterns with MNI support >= min_support from `data`
/// (which must be vertex-labeled), growing edge-by-edge from frequent
/// single edges with apriori pruning — the GraMi algorithm with T-FSM's
/// parallel support evaluation.
SingleGraphFsmResult MineSingleGraph(const Graph& data,
                                     const SingleGraphFsmOptions& options);

struct TransactionFsmOptions {
  uint32_t min_support = 10;   // number of containing transactions
  uint32_t max_edges = 4;
  /// 0 = GAL_TASK_THREADS, else hardware_concurrency.
  uint32_t num_threads = 0;
  Canonicalization canonical = Canonicalization::kPermutation;
};

struct TransactionFsmResult {
  std::vector<FrequentPattern> patterns;
  /// For each pattern, ids of the transactions containing it.
  std::vector<std::vector<uint32_t>> occurrences;
  FsmStats stats;
};

/// Mines patterns contained in >= min_support transactions, depth-first
/// per seed pattern with parallel tasks (PrefixFPM's
/// parallel-prefix-projection shape). Containment checks of a child
/// pattern are restricted to the parent's occurrence list — the
/// projected-database idea.
TransactionFsmResult MineTransactions(const TransactionDb& db,
                                      const TransactionFsmOptions& options);

/// Filters a mined result to its *closed* patterns: those with no
/// frequent super-pattern of equal support (PrefixFPM mines frequent
/// and closed patterns; closedness removes the redundancy of reporting
/// every sub-pattern of a large frequent structure). Quadratic in the
/// pattern count with one containment check per candidate pair —
/// adequate for mined sets of this scale.
std::vector<FrequentPattern> ClosedPatterns(
    const std::vector<FrequentPattern>& patterns);

}  // namespace gal

#endif  // GAL_FSM_FSM_H_
