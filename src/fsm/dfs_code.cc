#include "fsm/dfs_code.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace gal {
namespace {

bool IsForward(const DfsEdge& e) { return e.to > e.from; }

}  // namespace

bool DfsEdgeLess(const DfsEdge& a, const DfsEdge& b) {
  const bool fa = IsForward(a);
  const bool fb = IsForward(b);
  // gSpan's structural order.
  if (!fa && !fb) {  // both backward
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
  } else if (fa && fb) {  // both forward
    if (a.to != b.to) return a.to < b.to;
    if (a.from != b.from) return a.from > b.from;  // deeper source first
  } else if (!fa && fb) {  // backward vs forward
    if (a.from < b.to) return true;
    if (a.from >= b.to) return false;
  } else {  // forward vs backward
    if (a.to <= b.from) return true;
    return false;
  }
  // Structurally equal: label tie-breakers.
  if (a.from_label != b.from_label) return a.from_label < b.from_label;
  return a.to_label < b.to_label;
}

bool DfsCodeLess(const std::vector<DfsEdge>& a,
                 const std::vector<DfsEdge>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (DfsEdgeLess(a[i], b[i])) return true;
    if (DfsEdgeLess(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

namespace {

/// Exhaustive enumeration of valid DFS codes with prefix pruning.
struct MinCodeSearch {
  const Graph* g;
  std::vector<DfsEdge> best;
  bool have_best = false;

  // Traversal state.
  std::vector<int32_t> index_of;      // pattern vertex -> discovery index
  std::vector<VertexId> vertex_at;    // discovery index -> pattern vertex
  std::vector<VertexId> rightmost;    // rightmost path (discovery indices'
                                      // pattern vertices, root..rightmost)
  std::vector<std::vector<VertexId>> adj;  // decoded rows: the search does
                                           // slot arithmetic on them across
                                           // recursion, and patterns are
                                           // tiny (<= 8 vertices)
  std::vector<std::vector<uint8_t>> used;  // used[u][slot in adj[u]]
  std::vector<DfsEdge> code;
  uint32_t used_edges = 0;

  bool EdgeUsed(VertexId u, VertexId v) const {
    const std::vector<VertexId>& nbrs = adj[u];
    const size_t slot =
        std::lower_bound(nbrs.begin(), nbrs.end(), v) - nbrs.begin();
    return used[u][slot] != 0;
  }
  void MarkEdge(VertexId u, VertexId v, uint8_t value) {
    auto mark = [&](VertexId a, VertexId b) {
      const std::vector<VertexId>& nbrs = adj[a];
      const size_t slot =
          std::lower_bound(nbrs.begin(), nbrs.end(), b) - nbrs.begin();
      used[a][slot] = value;
    };
    mark(u, v);
    mark(v, u);
  }

  /// Emits e; returns false (and does not emit) when the prefix is
  /// already worse than the best complete code.
  bool Push(const DfsEdge& e, bool* tight) {
    // *tight means the prefix so far equals best's prefix.
    if (have_best && *tight) {
      const DfsEdge& b = best[code.size()];
      if (DfsEdgeLess(b, e)) return false;  // worse: prune
      if (DfsEdgeLess(e, b)) *tight = false;  // strictly better prefix
    }
    code.push_back(e);
    return true;
  }

  void Search(bool tight) {
    const VertexId rm = rightmost.back();
    const uint32_t rm_index = static_cast<uint32_t>(index_of[rm]);

    // Forced phase: all unused backward edges from the rightmost vertex,
    // in increasing ancestor discovery order (the only valid gSpan
    // form). Track them so this frame can undo on every exit path.
    std::vector<VertexId> backward_done;
    bool pruned = false;
    for (size_t anc = 0; anc + 1 < rightmost.size(); ++anc) {
      const VertexId target = rightmost[anc];
      if (!g->HasEdge(rm, target) || EdgeUsed(rm, target)) continue;
      DfsEdge e{rm_index, static_cast<uint32_t>(index_of[target]),
                g->LabelOf(rm), g->LabelOf(target)};
      if (!Push(e, &tight)) {
        pruned = true;  // prefix already worse than best: prune branch
        break;
      }
      MarkEdge(rm, target, 1);
      ++used_edges;
      backward_done.push_back(target);
    }

    if (!pruned) {
      if (used_edges == g->NumEdges()) {
        if (!have_best || DfsCodeLess(code, best)) {
          best = code;
          have_best = true;
        }
      } else {
        // Branch phase: forward extensions from rightmost-path vertices.
        for (size_t pos = rightmost.size(); pos-- > 0;) {
          const VertexId from = rightmost[pos];
          for (VertexId to : adj[from]) {
            if (index_of[to] >= 0) continue;  // already discovered
            const uint32_t new_index =
                static_cast<uint32_t>(vertex_at.size());
            DfsEdge e{static_cast<uint32_t>(index_of[from]), new_index,
                      g->LabelOf(from), g->LabelOf(to)};
            bool child_tight = tight;
            if (!Push(e, &child_tight)) continue;
            MarkEdge(from, to, 1);
            ++used_edges;
            index_of[to] = static_cast<int32_t>(new_index);
            vertex_at.push_back(to);
            std::vector<VertexId> saved_tail(rightmost.begin() + pos + 1,
                                             rightmost.end());
            rightmost.resize(pos + 1);
            rightmost.push_back(to);

            Search(child_tight);

            rightmost.pop_back();
            rightmost.insert(rightmost.end(), saved_tail.begin(),
                             saved_tail.end());
            vertex_at.pop_back();
            index_of[to] = -1;
            --used_edges;
            MarkEdge(from, to, 0);
            code.pop_back();
          }
        }
      }
    }

    // Undo the forced backward edges of this frame.
    for (size_t i = backward_done.size(); i-- > 0;) {
      MarkEdge(rm, backward_done[i], 0);
      --used_edges;
      code.pop_back();
    }
  }
};

}  // namespace

std::vector<DfsEdge> MinDfsCode(const Graph& pattern) {
  GAL_CHECK(pattern.NumVertices() >= 2 && pattern.NumVertices() <= 8);
  GAL_CHECK(pattern.NumEdges() >= 1);
  MinCodeSearch search;
  search.g = &pattern;
  search.adj.resize(pattern.NumVertices());
  search.used.resize(pattern.NumVertices());
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    search.adj[v].reserve(pattern.Degree(v));
    pattern.ForEachOutNeighbor(
        v, [&](VertexId u) { search.adj[v].push_back(u); });
    search.used[v].assign(search.adj[v].size(), 0);
  }
  for (VertexId root = 0; root < pattern.NumVertices(); ++root) {
    search.index_of.assign(pattern.NumVertices(), -1);
    search.index_of[root] = 0;
    search.vertex_at = {root};
    search.rightmost = {root};
    search.code.clear();
    search.used_edges = 0;
    for (auto& row : search.used) {
      std::fill(row.begin(), row.end(), 0);
    }
    search.Search(/*tight=*/true);
  }
  GAL_CHECK(search.have_best);
  return search.best;
}

std::string DfsCodeString(const std::vector<DfsEdge>& code) {
  std::ostringstream os;
  for (const DfsEdge& e : code) {
    os << "(" << e.from << "," << e.to << ","
       << static_cast<char>('A' + e.from_label % 26) << ","
       << static_cast<char>('A' + e.to_label % 26) << ")";
  }
  return os.str();
}

}  // namespace gal
