#include "fsm/mni.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "common/logging.h"
#include "common/threadpool.h"
#include "match/candidates.h"

namespace gal {
namespace {

/// A matching order rooted at a chosen pattern vertex: BFS from it, so
/// every later vertex joins the mapped prefix.
struct RootedPlan {
  std::vector<VertexId> order;                       // pattern vertices
  std::vector<std::vector<uint32_t>> backward;       // positions
};

RootedPlan BuildRootedPlan(const Graph& pattern, VertexId root) {
  RootedPlan plan;
  const VertexId k = pattern.NumVertices();
  std::vector<uint8_t> placed(k, 0);
  std::deque<VertexId> queue{root};
  placed[root] = 1;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    plan.order.push_back(u);
    pattern.ForEachOutNeighbor(u, [&](VertexId w) {
      if (!placed[w]) {
        placed[w] = 1;
        queue.push_back(w);
      }
    });
  }
  GAL_CHECK(plan.order.size() == k) << "FSM patterns must be connected";
  std::vector<uint32_t> position(k);
  for (uint32_t i = 0; i < k; ++i) position[plan.order[i]] = i;
  plan.backward.resize(k);
  for (uint32_t i = 0; i < k; ++i) {
    pattern.ForEachOutNeighbor(plan.order[i], [&](VertexId w) {
      if (position[w] < i) plan.backward[i].push_back(position[w]);
    });
  }
  return plan;
}

/// True iff a match exists extending `mapped` (positions [0, depth)).
bool ExistsMatch(const Graph& data, const RootedPlan& plan,
                 const CandidateSets& candidates,
                 std::vector<VertexId>& mapped, uint32_t depth) {
  if (depth == plan.order.size()) return true;
  const std::vector<VertexId>& cand = candidates.candidates[plan.order[depth]];
  const std::vector<uint32_t>& backward = plan.backward[depth];
  GAL_CHECK(!backward.empty());
  // Cursor, not a decoded row: the recursion below reuses any shared
  // scratch, while cursor state is self-contained and stays valid.
  const VertexId anchor = mapped[backward[0]];
  for (Graph::NeighborCursor cur = data.OutNeighbors(anchor); cur.Valid();
       cur.Next()) {
    const VertexId v = cur.Get();
    if (!std::binary_search(cand.begin(), cand.end(), v)) continue;
    bool ok = true;
    for (size_t b = 1; b < backward.size(); ++b) {
      if (!data.HasEdge(mapped[backward[b]], v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (std::find(mapped.begin(), mapped.begin() + depth, v) !=
        mapped.begin() + depth) {
      continue;
    }
    mapped[depth] = v;
    if (ExistsMatch(data, plan, candidates, mapped, depth + 1)) return true;
  }
  return false;
}

}  // namespace

MniResult MniSupport(const Graph& data, const Graph& pattern,
                     const MniOptions& options) {
  const VertexId k = pattern.NumVertices();
  GAL_CHECK(k >= 1);
  MniResult result;
  result.images.assign(k, 0);

  const CandidateSets candidates = NlfFilter(data, pattern);
  ThreadPool pool(options.num_threads);
  std::atomic<uint64_t> checks{0};

  uint32_t support = data.NumVertices();
  for (VertexId u = 0; u < k; ++u) {
    const RootedPlan plan = BuildRootedPlan(pattern, u);
    const std::vector<VertexId>& cand = candidates.candidates[u];
    std::atomic<uint32_t> images{0};
    std::atomic<uint32_t> processed{0};
    std::atomic<bool> stop{false};

    pool.ParallelForShards(cand.size(), [&](size_t begin, size_t end) {
      std::vector<VertexId> mapped(k, kInvalidVertex);
      for (size_t i = begin; i < end; ++i) {
        if (stop.load(std::memory_order_relaxed)) break;
        checks.fetch_add(1, std::memory_order_relaxed);
        mapped[0] = cand[i];
        if (k == 1 || ExistsMatch(data, plan, candidates, mapped, 1)) {
          images.fetch_add(1, std::memory_order_relaxed);
        }
        const uint32_t done =
            processed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.threshold != 0) {
          const uint32_t found = images.load(std::memory_order_relaxed);
          // Decided frequent for this vertex, or hopeless.
          if (found >= options.threshold ||
              found + (cand.size() - done) < options.threshold) {
            stop.store(true, std::memory_order_relaxed);
          }
        }
      }
    });

    result.images[u] = images.load();
    support = std::min(support, result.images[u]);
    if (options.threshold != 0 && result.images[u] < options.threshold) {
      // Early-out: the pattern is already infrequent.
      support = result.images[u];
      break;
    }
  }
  result.support = support;
  result.existence_checks = checks.load();
  return result;
}

}  // namespace gal
