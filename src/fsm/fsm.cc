#include "fsm/fsm.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "common/logging.h"
#include "common/timer.h"
#include "fsm/canonical.h"
#include "fsm/dfs_code.h"
#include "fsm/mni.h"
#include "match/executor.h"
#include "tlag/task_engine.h"

namespace gal {
namespace {

/// The dedup key of a pattern under the chosen canonical form.
std::string PatternKey(const Graph& pattern, Canonicalization canonical) {
  return canonical == Canonicalization::kPermutation
             ? CanonicalCode(pattern)
             : DfsCodeString(MinDfsCode(pattern));
}

/// Distinct labels present in a labeled graph.
std::vector<Label> LabelAlphabet(const Graph& g) {
  std::set<Label> labels(g.labels().begin(), g.labels().end());
  return {labels.begin(), labels.end()};
}

/// Frequent single-edge seeds of a single graph: label pairs whose edge
/// pattern meets the MNI threshold (GraMi's frequent-edge pruning).
std::vector<Graph> FrequentEdgeSeeds(const Graph& data, uint32_t min_support,
                                     uint32_t num_threads, FsmStats& stats) {
  std::set<std::pair<Label, Label>> pairs;
  for (const Edge& e : data.CollectEdges()) {
    Label a = data.LabelOf(e.src);
    Label b = data.LabelOf(e.dst);
    if (a > b) std::swap(a, b);
    pairs.insert({a, b});
  }
  std::vector<Graph> seeds;
  for (const auto& [a, b] : pairs) {
    Graph edge = EdgePattern(a, b);
    MniOptions mni;
    mni.threshold = min_support;
    mni.num_threads = num_threads;
    MniResult r = MniSupport(data, edge, mni);
    ++stats.patterns_evaluated;
    stats.existence_checks += r.existence_checks;
    if (r.support >= min_support) seeds.push_back(std::move(edge));
  }
  return seeds;
}

}  // namespace

SingleGraphFsmResult MineSingleGraph(const Graph& data,
                                     const SingleGraphFsmOptions& options) {
  GAL_CHECK(data.IsLabeled()) << "single-graph FSM needs vertex labels";
  Timer timer;
  SingleGraphFsmResult result;

  const uint32_t num_threads = ResolveTaskThreads(options.num_threads);
  const std::vector<Label> alphabet = LabelAlphabet(data);
  std::vector<Graph> frontier = FrequentEdgeSeeds(
      data, options.min_support, num_threads, result.stats);

  std::set<std::string> seen;
  for (const Graph& seed : frontier) {
    seen.insert(PatternKey(seed, options.canonical));
  }

  // Level-wise growth over the pattern lattice; support evaluation is
  // the parallel inner loop (T-FSM's task decomposition lives inside
  // MniSupport).
  while (!frontier.empty()) {
    std::vector<Graph> next;
    for (Graph& pattern : frontier) {
      MniOptions mni;
      mni.threshold = options.min_support;
      mni.num_threads = num_threads;
      // Seeds were already verified frequent; re-evaluate to get a
      // support value for reporting (exact up to early termination).
      MniResult r = MniSupport(data, pattern, mni);
      ++result.stats.patterns_evaluated;
      result.stats.existence_checks += r.existence_checks;
      if (r.support < options.min_support) {
        // Children are pruned by anti-monotonicity of MNI.
        result.stats.pruned_by_apriori +=
            ExtendPattern(pattern, alphabet).size();
        continue;
      }
      ++result.stats.patterns_frequent;
      result.patterns.push_back({pattern, r.support});
      if (pattern.NumEdges() >= options.max_edges) continue;
      for (Graph& child : ExtendPattern(pattern, alphabet)) {
        if (seen.insert(PatternKey(child, options.canonical)).second) {
          next.push_back(std::move(child));
        }
      }
    }
    frontier = std::move(next);
  }

  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

namespace {

/// Task for the transaction miner: a pattern plus its occurrence list
/// (ids of transactions known to contain the *parent*, the projected
/// database to re-check against).
struct TxTask {
  Graph pattern;
  std::vector<uint32_t> parent_occurrences;
};

struct TxShared {
  const TransactionDb* db;
  const TransactionFsmOptions* options;
  std::vector<Label> alphabet;
  std::mutex mu;
  std::set<std::string> seen;
  std::vector<FrequentPattern> patterns;
  std::vector<std::vector<uint32_t>> occurrences;
  std::atomic<uint64_t> evaluated{0};
  std::atomic<uint64_t> pruned{0};
};

void ProcessTxTask(TxTask& task, TxShared& shared,
                   TaskEngine<TxTask>::Context& ctx) {
  shared.evaluated.fetch_add(1, std::memory_order_relaxed);
  // Containment is checked only within the parent's occurrences
  // (anti-monotone: a child can only occur where the parent did).
  std::vector<uint32_t> occ;
  MatchOptions match;
  match.limit = 1;
  match.engine.num_threads = 1;
  for (uint32_t t : task.parent_occurrences) {
    if (HasSubgraphMatch((*shared.db)[t].graph, task.pattern, match)) {
      occ.push_back(t);
    }
  }
  if (occ.size() < shared.options->min_support) return;

  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.patterns.push_back(
        {task.pattern, static_cast<uint32_t>(occ.size())});
    shared.occurrences.push_back(occ);
  }
  if (task.pattern.NumEdges() >= shared.options->max_edges) return;
  for (Graph& child : ExtendPattern(task.pattern, shared.alphabet)) {
    std::string key = PatternKey(child, shared.options->canonical);
    bool fresh;
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      fresh = shared.seen.insert(std::move(key)).second;
    }
    if (fresh) {
      ctx.Spawn({std::move(child), occ});
    } else {
      shared.pruned.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace

TransactionFsmResult MineTransactions(const TransactionDb& db,
                                      const TransactionFsmOptions& options) {
  Timer timer;
  TransactionFsmResult result;
  TxShared shared;
  shared.db = &db;
  shared.options = &options;

  // Alphabet and seed edges across the whole database.
  std::set<Label> labels;
  std::set<std::pair<Label, Label>> edge_kinds;
  for (const GraphTransaction& t : db.transactions()) {
    GAL_CHECK(t.graph.IsLabeled()) << "transaction FSM needs vertex labels";
    for (Label l : t.graph.labels()) labels.insert(l);
    for (const Edge& e : t.graph.CollectEdges()) {
      Label a = t.graph.LabelOf(e.src);
      Label b = t.graph.LabelOf(e.dst);
      if (a > b) std::swap(a, b);
      edge_kinds.insert({a, b});
    }
  }
  shared.alphabet.assign(labels.begin(), labels.end());

  std::vector<uint32_t> all_transactions(db.size());
  for (uint32_t t = 0; t < db.size(); ++t) all_transactions[t] = t;

  std::vector<TxTask> seeds;
  for (const auto& [a, b] : edge_kinds) {
    Graph edge = EdgePattern(a, b);
    shared.seen.insert(PatternKey(edge, options.canonical));
    seeds.push_back({std::move(edge), all_transactions});
  }

  TaskEngineConfig engine_config;
  engine_config.num_threads = options.num_threads;
  TaskEngine<TxTask> engine(engine_config);
  engine.Run(std::move(seeds),
             [&shared](TxTask& task, TaskEngine<TxTask>::Context& ctx) {
               ProcessTxTask(task, shared, ctx);
             });

  result.patterns = std::move(shared.patterns);
  result.occurrences = std::move(shared.occurrences);
  result.stats.patterns_evaluated = shared.evaluated.load();
  result.stats.patterns_frequent = result.patterns.size();
  result.stats.pruned_by_apriori = shared.pruned.load();
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<FrequentPattern> ClosedPatterns(
    const std::vector<FrequentPattern>& patterns) {
  std::vector<FrequentPattern> closed;
  for (size_t i = 0; i < patterns.size(); ++i) {
    bool is_closed = true;
    for (size_t j = 0; j < patterns.size(); ++j) {
      if (i == j) continue;
      const Graph& small = patterns[i].pattern;
      const Graph& big = patterns[j].pattern;
      if (patterns[j].support != patterns[i].support) continue;
      if (big.NumEdges() <= small.NumEdges() &&
          big.NumVertices() <= small.NumVertices()) {
        continue;  // not strictly larger
      }
      MatchOptions match;
      match.limit = 1;
      match.engine.num_threads = 1;
      if (HasSubgraphMatch(big, small, match)) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(patterns[i]);
  }
  return closed;
}

}  // namespace gal
