#ifndef GAL_FSM_DFS_CODE_H_
#define GAL_FSM_DFS_CODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// gSpan DFS codes — the canonical form the FSM literature (gSpan,
/// GraMi, PrefixFPM) builds on. A DFS traversal of a connected labeled
/// pattern emits one 4-tuple per edge; the *minimum* code over all
/// traversals is a canonical form: two patterns share it iff they are
/// isomorphic. This module provides the minimum code via exhaustive
/// DFS enumeration with prefix pruning (patterns are small), as an
/// independently-derived alternative to fsm/canonical.h's
/// permutation-minimal code — each validates the other.
struct DfsEdge {
  uint32_t from;     // discovery index of the source
  uint32_t to;       // discovery index of the target
  Label from_label;
  Label to_label;

  friend bool operator==(const DfsEdge& a, const DfsEdge& b) {
    return a.from == b.from && a.to == b.to &&
           a.from_label == b.from_label && a.to_label == b.to_label;
  }
};

/// gSpan's total order on DFS-code edges (structure first, labels as
/// tie-breakers). Returns true iff a < b.
bool DfsEdgeLess(const DfsEdge& a, const DfsEdge& b);

/// Lexicographic comparison of edge sequences under DfsEdgeLess.
bool DfsCodeLess(const std::vector<DfsEdge>& a, const std::vector<DfsEdge>& b);

/// The minimum DFS code of a connected pattern (<= 8 vertices, >= 1
/// edge). Terminates the process on disconnected input.
std::vector<DfsEdge> MinDfsCode(const Graph& pattern);

/// Printable form, e.g. "(0,1,A,B)(1,2,B,A)".
std::string DfsCodeString(const std::vector<DfsEdge>& code);

}  // namespace gal

#endif  // GAL_FSM_DFS_CODE_H_
