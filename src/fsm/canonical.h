#ifndef GAL_FSM_CANONICAL_H_
#define GAL_FSM_CANONICAL_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// A canonical string code for a small labeled pattern graph: the
/// lexicographic minimum over all vertex permutations of
/// (labels, upper-triangular adjacency bits). Two patterns have equal
/// codes iff they are isomorphic — the dedup primitive FSM systems get
/// from gSpan's minimum DFS codes, realized here by brute-force
/// minimization (patterns are <= 8 vertices by construction).
std::string CanonicalCode(const Graph& pattern);

/// Isomorphism check via canonical codes.
bool PatternsIsomorphic(const Graph& a, const Graph& b);

/// All single-edge extensions of `pattern` using the given vertex label
/// alphabet (GraMi/gSpan rightmost-extension stand-in):
///   - close an open pair: add an edge between two existing,
///     non-adjacent vertices;
///   - grow: add a new vertex with each allowed label, attached to each
///     existing vertex.
/// The result is deduplicated by canonical code.
std::vector<Graph> ExtendPattern(const Graph& pattern,
                                 const std::vector<Label>& label_alphabet);

/// The single-edge pattern with endpoint labels (a, b).
Graph EdgePattern(Label a, Label b);

}  // namespace gal

#endif  // GAL_FSM_CANONICAL_H_
