#ifndef GAL_FSM_MNI_H_
#define GAL_FSM_MNI_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Minimum-image-based (MNI) support of a pattern in one big graph — the
/// anti-monotone support measure FSM-in-a-single-graph systems (GraMi,
/// ScaleMine, T-FSM) standardize on: for each pattern vertex u, count
/// the distinct data vertices that host u in at least one match; support
/// is the minimum of those counts.
struct MniOptions {
  /// Early-termination threshold (GraMi's key optimization): evaluation
  /// stops as soon as the pattern is decided frequent (every pattern
  /// vertex reached `threshold` images) or infrequent (some vertex can
  /// no longer reach it). 0 disables early termination (exact support).
  uint32_t threshold = 0;
  /// Existence checks for different candidate images are independent
  /// subgraph-matching tasks; T-FSM's parallelization axis.
  uint32_t num_threads = 1;
};

struct MniResult {
  /// Exact support, or a value >= threshold when early-terminated
  /// frequent, or < threshold when early-terminated infrequent.
  uint32_t support = 0;
  /// Distinct images per pattern vertex (lower bounds under early
  /// termination).
  std::vector<uint32_t> images;
  uint64_t existence_checks = 0;  // matcher invocations
};

MniResult MniSupport(const Graph& data, const Graph& pattern,
                     const MniOptions& options = {});

}  // namespace gal

#endif  // GAL_FSM_MNI_H_
