#include "fsm/canonical.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.h"

namespace gal {
namespace {

std::string CodeUnderPermutation(const Graph& p,
                                 const std::vector<VertexId>& perm) {
  const VertexId n = p.NumVertices();
  std::string code;
  code.reserve(n + n * (n - 1) / 2);
  for (VertexId i = 0; i < n; ++i) {
    code.push_back(static_cast<char>('A' + (p.LabelOf(perm[i]) % 26)));
  }
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      code.push_back(p.HasEdge(perm[i], perm[j]) ? '1' : '0');
    }
  }
  return code;
}

}  // namespace

std::string CanonicalCode(const Graph& pattern) {
  const VertexId n = pattern.NumVertices();
  GAL_CHECK(n <= 8) << "canonical codes are for small FSM patterns";
  if (n == 0) return "";
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::string best = CodeUnderPermutation(pattern, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::string code = CodeUnderPermutation(pattern, perm);
    if (code < best) best = std::move(code);
  }
  return best;
}

bool PatternsIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  return CanonicalCode(a) == CanonicalCode(b);
}

Graph EdgePattern(Label a, Label b) {
  if (a > b) std::swap(a, b);
  Result<Graph> g = Graph::FromEdges(2, {{0, 1}}, GraphOptions{});
  GAL_CHECK(g.ok());
  Graph pattern = std::move(g.value());
  GAL_CHECK_OK(pattern.SetLabels({a, b}));
  return pattern;
}

std::vector<Graph> ExtendPattern(const Graph& pattern,
                                 const std::vector<Label>& label_alphabet) {
  const VertexId n = pattern.NumVertices();
  std::vector<Edge> base_edges = pattern.CollectEdges();
  std::vector<Graph> out;
  std::set<std::string> seen;

  auto add_candidate = [&](VertexId num_vertices, std::vector<Edge> edges,
                           std::vector<Label> labels) {
    Result<Graph> g =
        Graph::FromEdges(num_vertices, std::move(edges), GraphOptions{});
    GAL_CHECK(g.ok()) << g.status();
    Graph candidate = std::move(g.value());
    GAL_CHECK_OK(candidate.SetLabels(std::move(labels)));
    std::string code = CanonicalCode(candidate);
    if (seen.insert(std::move(code)).second) {
      out.push_back(std::move(candidate));
    }
  };

  // Close an open vertex pair.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (pattern.HasEdge(u, v)) continue;
      std::vector<Edge> edges = base_edges;
      edges.push_back({u, v});
      add_candidate(n, std::move(edges), pattern.labels());
    }
  }

  // Attach a fresh labeled vertex to each existing one.
  for (VertexId u = 0; u < n; ++u) {
    for (Label l : label_alphabet) {
      std::vector<Edge> edges = base_edges;
      edges.push_back({u, n});
      std::vector<Label> labels = pattern.labels();
      labels.push_back(l);
      add_candidate(n + 1, std::move(edges), std::move(labels));
    }
  }
  return out;
}

}  // namespace gal
