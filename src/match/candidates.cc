#include "match/candidates.h"

#include <algorithm>
#include <map>

#include "graph/intersect.h"

namespace gal {
namespace {

std::map<Label, uint32_t> NeighborLabelCounts(const Graph& g, VertexId v) {
  std::map<Label, uint32_t> counts;
  g.ForEachOutNeighbor(v, [&](VertexId u) { ++counts[g.LabelOf(u)]; });
  return counts;
}

}  // namespace

CandidateSets LdfFilter(const Graph& data, const Graph& query) {
  const bool use_labels = data.IsLabeled() && query.IsLabeled();
  CandidateSets sets;
  sets.candidates.resize(query.NumVertices());
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    for (VertexId v = 0; v < data.NumVertices(); ++v) {
      if (use_labels && data.LabelOf(v) != query.LabelOf(u)) continue;
      if (data.Degree(v) < query.Degree(u)) continue;
      sets.candidates[u].push_back(v);
    }
  }
  return sets;
}

CandidateSets NlfFilter(const Graph& data, const Graph& query) {
  const bool use_labels = data.IsLabeled() && query.IsLabeled();
  if (!use_labels) return LdfFilter(data, query);

  CandidateSets sets;
  sets.candidates.resize(query.NumVertices());
  // Precompute query-side requirements once; data-side counts per probe.
  std::vector<std::map<Label, uint32_t>> required(query.NumVertices());
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    required[u] = NeighborLabelCounts(query, u);
  }
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    const std::map<Label, uint32_t> have = NeighborLabelCounts(data, v);
    for (VertexId u = 0; u < query.NumVertices(); ++u) {
      if (data.LabelOf(v) != query.LabelOf(u)) continue;
      if (data.Degree(v) < query.Degree(u)) continue;
      bool ok = true;
      for (const auto& [label, need] : required[u]) {
        auto it = have.find(label);
        if (it == have.end() || it->second < need) {
          ok = false;
          break;
        }
      }
      if (ok) sets.candidates[u].push_back(v);
    }
  }
  return sets;
}

RefineStats RefineCandidates(const Graph& data, const Graph& query,
                             CandidateSets* sets, uint32_t max_rounds) {
  RefineStats stats;
  const VertexId k = query.NumVertices();
  // The witness probe is an existence test between two sorted sets —
  // the shared adaptive intersection (early-exit merge, galloping for
  // hub-vs-candidate-list shapes) replaces the per-element
  // binary_search loop. Candidate lists are built ascending, so both
  // sides qualify. `query_scratch` decodes query rows (they can be
  // compressed too); `scratch` decodes data rows.
  NeighborScratch scratch;
  std::vector<VertexId> query_scratch;
  for (uint32_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (VertexId u = 0; u < k; ++u) {
      std::vector<VertexId>& cand = sets->candidates[u];
      std::vector<VertexId> kept;
      kept.reserve(cand.size());
      const auto query_nbrs = query.NeighborsInto(u, query_scratch);
      for (VertexId v : cand) {
        bool consistent = true;
        for (VertexId uq : query_nbrs) {
          const std::vector<VertexId>& cq = sets->candidates[uq];
          if (!IntersectAny(cq, data, v, scratch)) {
            consistent = false;
            break;
          }
        }
        if (consistent) {
          kept.push_back(v);
        } else {
          ++stats.removed;
          changed = true;
        }
      }
      cand = std::move(kept);
    }
    ++stats.rounds;
    if (!changed) break;
  }
  return stats;
}

}  // namespace gal
