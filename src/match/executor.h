#ifndef GAL_MATCH_EXECUTOR_H_
#define GAL_MATCH_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "match/candidates.h"
#include "match/plan.h"
#include "tlag/task_engine.h"

namespace gal {

/// Options shared by the matching executors.
struct MatchOptions {
  OrderStrategy order = OrderStrategy::kGreedyCost;
  /// When true, apply symmetry-breaking restrictions so each *distinct*
  /// subgraph instance is produced exactly once; when false, every
  /// automorphic image is produced (embedding semantics).
  bool symmetry_breaking = false;
  /// Use NLF candidate filtering (falls back to LDF when unlabeled).
  bool nlf_filter = true;
  /// Run iterated edge-consistency refinement on the candidate sets
  /// before enumeration (EGSM-style candidate-graph pruning).
  bool refine_candidates = false;
  /// Induced (exact) subgraph isomorphism: query *non*-edges must map
  /// to data non-edges too. Default is the standard non-induced
  /// semantics (extra data edges allowed).
  bool induced = false;
  /// Stop after this many results (0 = unlimited).
  uint64_t limit = 0;
  /// Adaptive task splitting: while filling plan positions <=
  /// split_depth and other workers are parked hungry
  /// (Context::StealPressure), candidate extensions are spawned as
  /// engine tasks instead of recursed — the STMatch/T-DFS mechanism
  /// that stops a hub-rooted search tree from serializing one core.
  /// 0 restores per-root-only scheduling. Match counts and collected
  /// match *sets* are identical at any thread count or split depth.
  uint32_t split_depth = 2;
  TaskEngineConfig engine;
};

struct MatchStats {
  uint64_t matches = 0;
  /// Candidate vertices tried across the whole search tree — the cost
  /// metric that matching-order optimization shrinks.
  uint64_t search_nodes = 0;
  uint64_t candidate_total = 0;  // Σ |C(u)| after filtering
  double wall_seconds = 0.0;
  TaskEngineStats task_stats;
};

struct MatchResult {
  MatchStats stats;
  /// Collected matches (query order positions -> data vertices, i.e.
  /// matches[i][j] hosts plan.order[j]); filled only when collect=true.
  std::vector<std::vector<VertexId>> matches;
  MatchPlan plan;
};

/// Depth-first backtracking subgraph isomorphism (the STMatch/T-DFS-
/// style kernel): per-root tasks on the work-stealing engine, O(depth)
/// state per worker. Finds *induced-free* (standard non-induced)
/// matches: all query edges must exist; extra data edges are fine.
MatchResult SubgraphMatch(const Graph& data, const Graph& query,
                          const MatchOptions& options = {},
                          bool collect = false);

/// Convenience: does at least one match exist?
bool HasSubgraphMatch(const Graph& data, const Graph& query,
                      const MatchOptions& options = {});

}  // namespace gal

#endif  // GAL_MATCH_EXECUTOR_H_
