#include "match/online.h"

#include <utility>

#include "common/timer.h"

namespace gal {

OnlineQueryServer::OnlineQueryServer(const Graph* data, uint32_t num_threads)
    : data_(data), pool_(num_threads) {}

std::future<OnlineQueryServer::QueryOutcome> OnlineQueryServer::Submit(
    Graph query, MatchOptions options) {
  // Queries share the pool; the per-query engine stays single-threaded.
  options.engine.num_threads = 1;
  auto promise = std::make_shared<std::promise<QueryOutcome>>();
  std::future<QueryOutcome> future = promise->get_future();
  auto submit_time = std::make_shared<Timer>();
  pool_.Submit([this, promise, submit_time, query = std::move(query),
                options]() mutable {
    QueryOutcome outcome;
    outcome.stats = SubgraphMatch(*data_, query, options).stats;
    outcome.latency_seconds = submit_time->ElapsedSeconds();
    completed_.Increment();
    promise->set_value(std::move(outcome));
  });
  return future;
}

void OnlineQueryServer::Drain() { pool_.Wait(); }

}  // namespace gal
