#include "match/pattern.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace gal {
namespace {

Graph BuildPattern(VertexId n, std::vector<Edge> edges) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges), GraphOptions{});
  GAL_CHECK(g.ok()) << g.status();
  return std::move(g.value());
}

/// Depth-first construction of label/adjacency-preserving permutations.
void ExtendAutomorphism(const Graph& p, std::vector<VertexId>& perm,
                        std::vector<uint8_t>& used,
                        std::vector<std::vector<VertexId>>& out) {
  const VertexId k = static_cast<VertexId>(perm.size());
  if (k == p.NumVertices()) {
    out.push_back(perm);
    return;
  }
  for (VertexId image = 0; image < p.NumVertices(); ++image) {
    if (used[image]) continue;
    if (p.LabelOf(k) != p.LabelOf(image)) continue;
    if (p.Degree(k) != p.Degree(image)) continue;
    // Adjacency consistency with already-assigned vertices.
    bool ok = true;
    for (VertexId prev = 0; prev < k; ++prev) {
      if (p.HasEdge(prev, k) != p.HasEdge(perm[prev], image)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    perm.push_back(image);
    used[image] = 1;
    ExtendAutomorphism(p, perm, used, out);
    used[image] = 0;
    perm.pop_back();
  }
}

}  // namespace

std::vector<std::vector<VertexId>> Automorphisms(const Graph& pattern) {
  GAL_CHECK(pattern.NumVertices() <= 10)
      << "automorphism enumeration is for small query patterns";
  std::vector<std::vector<VertexId>> out;
  std::vector<VertexId> perm;
  std::vector<uint8_t> used(pattern.NumVertices(), 0);
  ExtendAutomorphism(pattern, perm, used, out);
  return out;
}

std::vector<SymmetryRestriction> SymmetryBreakingRestrictions(
    const Graph& pattern) {
  std::set<SymmetryRestriction> restrictions;
  for (const std::vector<VertexId>& sigma : Automorphisms(pattern)) {
    for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
      if (sigma[v] == v) continue;
      // Break this automorphism at its first moved vertex: require the
      // image of v to exceed the image of min(v, sigma(v)).
      restrictions.insert({std::min(v, sigma[v]), std::max(v, sigma[v])});
      break;
    }
  }
  return {restrictions.begin(), restrictions.end()};
}

Graph TrianglePattern() { return BuildPattern(3, {{0, 1}, {1, 2}, {0, 2}}); }

Graph PathPattern(uint32_t k) {
  GAL_CHECK(k >= 2);
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < k; ++v) edges.push_back({v, v + 1});
  return BuildPattern(k, std::move(edges));
}

Graph CyclePattern(uint32_t k) {
  GAL_CHECK(k >= 3);
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < k; ++v) edges.push_back({v, v + 1});
  edges.push_back({k - 1, 0});
  return BuildPattern(k, std::move(edges));
}

Graph CliquePattern(uint32_t k) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) edges.push_back({u, v});
  }
  return BuildPattern(k, std::move(edges));
}

Graph StarPattern(uint32_t leaves) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= leaves; ++v) edges.push_back({0, v});
  return BuildPattern(leaves + 1, std::move(edges));
}

Graph TailedTrianglePattern() {
  return BuildPattern(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

Graph DiamondPattern() {
  return BuildPattern(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
}

}  // namespace gal
