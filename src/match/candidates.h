#ifndef GAL_MATCH_CANDIDATES_H_
#define GAL_MATCH_CANDIDATES_H_

#include <vector>

#include "graph/graph.h"

namespace gal {

/// Per-query-vertex candidate sets, the filtering stage every surveyed
/// matching system runs before enumeration (GSI's encoding filters,
/// EGSM's candidate graphs, G-thinkerQ's pruning).
struct CandidateSets {
  /// candidates[u] = sorted data vertices that may host query vertex u.
  std::vector<std::vector<VertexId>> candidates;

  uint64_t TotalSize() const {
    uint64_t s = 0;
    for (const auto& c : candidates) s += c.size();
    return s;
  }
};

/// LDF (label & degree filter): data vertex v hosts u only if labels
/// match (when both graphs are labeled) and deg(v) >= deg(u).
CandidateSets LdfFilter(const Graph& data, const Graph& query);

/// NLF (neighbor label frequency): LDF plus, for every label l, v must
/// have at least as many l-labeled neighbors as u does. Strictly
/// stronger than LDF on labeled graphs.
CandidateSets NlfFilter(const Graph& data, const Graph& query);

/// Iterated edge-consistency refinement of candidate sets (the
/// candidate-graph pruning of EGSM / GraphQL-style filters): v stays a
/// candidate of u only if, for every query neighbor u' of u, v has at
/// least one data neighbor in C(u'). Applied to fixpoint (or
/// max_rounds). Sound: never removes a vertex that participates in any
/// match.
struct RefineStats {
  uint32_t rounds = 0;
  uint64_t removed = 0;
};
RefineStats RefineCandidates(const Graph& data, const Graph& query,
                             CandidateSets* sets, uint32_t max_rounds = 8);

}  // namespace gal

#endif  // GAL_MATCH_CANDIDATES_H_
