#include "match/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/timer.h"
#include "graph/intersect.h"

namespace gal {
namespace {

struct SearchShared {
  const Graph* data;
  const MatchPlan* plan;
  const CandidateSets* candidates;
  uint64_t limit;
  bool collect;
  bool induced;
  uint32_t split_depth;
  std::atomic<uint64_t> matches{0};
  std::atomic<uint64_t> search_nodes{0};
  std::mutex out_mu;
  std::vector<std::vector<VertexId>> collected;

  bool LimitReached() const {
    return limit != 0 && matches.load(std::memory_order_relaxed) >= limit;
  }
};

/// Per-thread DFS state: the partial mapping (by plan position).
struct SearchState {
  std::vector<VertexId> mapped;
  // cand ∩ N(anchor) per plan position. The loop over it spans the
  // recursive extend calls, so each depth owns its buffer; the decode
  // scratch is fully consumed inside IntersectInto (no recursion there),
  // so one per state suffices.
  std::vector<std::vector<VertexId>> joined_at;
  NeighborScratch scratch;
};

/// A shippable unit of search: the mapped plan-position prefix, with the
/// *last* vertex still unvalidated (injectivity / restrictions / induced
/// checks run where the task runs, so split and unsplit executions visit
/// bit-identical search trees). Roots are prefixes of length 1.
using PrefixTask = std::vector<VertexId>;

using MatchContext = TaskEngine<PrefixTask>::Context;

bool RestrictionsOk(const SearchShared& shared, const SearchState& state,
                    uint32_t position, VertexId v) {
  for (const auto& [lo, hi] : shared.plan->order_restrictions) {
    const uint32_t later = std::max(lo, hi);
    if (later != position) continue;
    const uint32_t earlier = std::min(lo, hi);
    const VertexId earlier_v = state.mapped[earlier];
    // Restriction is (lo < hi) in *mapped data vertex* order.
    if (later == hi) {
      if (!(earlier_v < v)) return false;
    } else {
      if (!(v < earlier_v)) return false;
    }
  }
  return true;
}

void Backtrack(SearchShared& shared, SearchState& state, uint32_t position,
               MatchContext& ctx);

/// The per-candidate step: counts the search node, validates v at
/// `position`, and recurses. Runs either inline or as the first step of
/// a stolen prefix task — identically in both cases.
void TryVertex(SearchShared& shared, SearchState& state, uint32_t position,
               VertexId v, MatchContext& ctx) {
  shared.search_nodes.fetch_add(1, std::memory_order_relaxed);
  // Injectivity.
  for (uint32_t j = 0; j < position; ++j) {
    if (state.mapped[j] == v) return;
  }
  if (!RestrictionsOk(shared, state, position, v)) return;
  if (shared.induced) {
    for (uint32_t j : shared.plan->backward_nonneighbors[position]) {
      if (shared.data->HasEdge(state.mapped[j], v)) return;
    }
  }
  state.mapped[position] = v;
  Backtrack(shared, state, position + 1, ctx);
}

void Backtrack(SearchShared& shared, SearchState& state, uint32_t position,
               MatchContext& ctx) {
  if (shared.LimitReached()) return;
  const MatchPlan& plan = *shared.plan;
  const Graph& data = *shared.data;
  const uint32_t k = static_cast<uint32_t>(plan.order.size());

  if (position == k) {
    shared.matches.fetch_add(1, std::memory_order_relaxed);
    if (shared.collect) {
      std::lock_guard<std::mutex> lock(shared.out_mu);
      shared.collected.push_back(state.mapped);
    }
    return;
  }

  const std::vector<uint32_t>& backward = plan.backward_neighbors[position];
  const std::vector<VertexId>& cand =
      shared.candidates->candidates[plan.order[position]];

  // Adaptive prefix splitting (the STMatch/T-DFS mechanism): at shallow
  // positions, when thieves are parked hungry, ship the extension as an
  // engine task (prefix + unvalidated candidate) instead of recursing —
  // a hub-rooted subtree then spreads over idle workers instead of
  // serializing one. Never split the leaf position: the spawn would
  // cost more than the remaining work.
  const bool may_split = position <= shared.split_depth && position + 1 < k;
  auto extend = [&](VertexId v) {
    if (may_split && ctx.StealPressure()) {
      PrefixTask child(state.mapped.begin(),
                       state.mapped.begin() + position);
      child.push_back(v);
      ctx.Spawn(std::move(child));
      return;
    }
    TryVertex(shared, state, position, v, ctx);
  };

  if (backward.empty()) {
    for (VertexId v : cand) {
      if (shared.LimitReached()) return;
      extend(v);
    }
    return;
  }

  // Local candidates: cand ∩ N(anchor) via the shared adaptive
  // intersection (merge or gallop by skew) instead of scanning every
  // anchor neighbor through binary_search. Members arrive ascending, so
  // extend() fires on the same vertices in the same order and
  // search_nodes stays deterministic.
  const VertexId anchor = state.mapped[backward[0]];
  std::vector<VertexId>& joined = state.joined_at[position];
  IntersectInto(cand, data, anchor, joined, state.scratch);
  for (VertexId v : joined) {
    if (shared.LimitReached()) return;
    bool joins = true;
    for (size_t b = 1; b < backward.size(); ++b) {
      if (!data.HasEdge(state.mapped[backward[b]], v)) {
        joins = false;
        break;
      }
    }
    if (joins) extend(v);
  }
}

}  // namespace

MatchResult SubgraphMatch(const Graph& data, const Graph& query,
                          const MatchOptions& options, bool collect) {
  Timer timer;
  MatchResult result;
  CandidateSets candidates = options.nlf_filter ? NlfFilter(data, query)
                                                : LdfFilter(data, query);
  if (options.refine_candidates) {
    RefineCandidates(data, query, &candidates);
  }
  result.plan = BuildPlan(query, candidates, options.order,
                          options.symmetry_breaking);

  SearchShared shared;
  shared.data = &data;
  shared.plan = &result.plan;
  shared.candidates = &candidates;
  shared.limit = options.limit;
  shared.collect = collect;
  shared.induced = options.induced;
  shared.split_depth = options.split_depth;

  // Root tasks: one per candidate of the first ordered query vertex,
  // each a length-1 unvalidated prefix.
  std::vector<PrefixTask> roots;
  roots.reserve(candidates.candidates[result.plan.order[0]].size());
  for (VertexId v : candidates.candidates[result.plan.order[0]]) {
    roots.push_back({v});
  }

  TaskEngine<PrefixTask> engine(options.engine);
  const uint32_t k = query.NumVertices();
  TaskEngineStats task_stats = engine.Run(
      std::move(roots), [&shared, k](PrefixTask& prefix, MatchContext& ctx) {
        if (shared.LimitReached()) return;
        SearchState state;
        state.mapped.assign(k, kInvalidVertex);
        state.joined_at.resize(k);
        const uint32_t position = static_cast<uint32_t>(prefix.size()) - 1;
        for (uint32_t j = 0; j < position; ++j) state.mapped[j] = prefix[j];
        TryVertex(shared, state, position, prefix[position], ctx);
      });

  result.stats.matches = shared.matches.load();
  if (options.limit != 0) {
    result.stats.matches = std::min(result.stats.matches, options.limit);
  }
  result.stats.search_nodes = shared.search_nodes.load();
  result.stats.candidate_total = candidates.TotalSize();
  result.stats.task_stats = task_stats;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.matches = std::move(shared.collected);
  if (options.limit != 0 && result.matches.size() > options.limit) {
    result.matches.resize(options.limit);
  }
  return result;
}

bool HasSubgraphMatch(const Graph& data, const Graph& query,
                      const MatchOptions& options) {
  MatchOptions limited = options;
  limited.limit = 1;
  return SubgraphMatch(data, query, limited).stats.matches > 0;
}

}  // namespace gal
