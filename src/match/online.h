#ifndef GAL_MATCH_ONLINE_H_
#define GAL_MATCH_ONLINE_H_

#include <future>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/threadpool.h"
#include "graph/graph.h"
#include "match/executor.h"

namespace gal {

/// G-thinkerQ-style online subgraph query service: clients keep
/// submitting query patterns against one resident data graph; queries
/// run concurrently on a shared pool instead of each monopolizing the
/// machine (the "interactive online querying" row of Table 1).
class OnlineQueryServer {
 public:
  struct QueryOutcome {
    MatchStats stats;
    double latency_seconds = 0.0;  // submit -> completion
  };

  /// The server keeps a reference to `data`; it must outlive the server.
  OnlineQueryServer(const Graph* data, uint32_t num_threads);

  /// Enqueues a query; the future resolves when it finishes. Each query
  /// runs single-threaded within the pool so concurrent queries share
  /// the machine (G-thinkerQ multiplexes tasks of concurrent queries).
  std::future<QueryOutcome> Submit(Graph query, MatchOptions options = {});

  /// Blocks until all submitted queries completed.
  void Drain();

  uint64_t queries_completed() const { return completed_.Get(); }

 private:
  const Graph* data_;
  ThreadPool pool_;
  Counter completed_;
};

}  // namespace gal

#endif  // GAL_MATCH_ONLINE_H_
