#include "match/bfs_executor.h"

#include <algorithm>

#include "common/timer.h"
#include "graph/intersect.h"

namespace gal {
namespace {

struct JoinContext {
  const Graph* data;
  const MatchPlan* plan;
  const CandidateSets* candidates;
  BfsMatchResult* result;
  bool induced = false;
  // Reused across ExtendPartial calls: decode rows for the adaptive
  // intersection plus the cand ∩ N(anchor) result. The executor is
  // serial, and `joined` is fully consumed before any nested extension,
  // so one of each is enough.
  NeighborScratch scratch;
  std::vector<VertexId> joined;
};

uint64_t PartialBytes(size_t depth) {
  return depth * sizeof(VertexId) + sizeof(std::vector<VertexId>);
}

bool RestrictionsOk(const MatchPlan& plan,
                    const std::vector<VertexId>& mapped, uint32_t position,
                    VertexId v) {
  for (const auto& [lo, hi] : plan.order_restrictions) {
    const uint32_t later = std::max(lo, hi);
    if (later != position) continue;
    const VertexId earlier_v = mapped[std::min(lo, hi)];
    if (later == hi ? !(earlier_v < v) : !(v < earlier_v)) return false;
  }
  return true;
}

/// Emits the valid extensions of `partial` at `position`.
void ExtendPartial(JoinContext& ctx,
                   const std::vector<VertexId>& partial, uint32_t position,
                   std::vector<VertexId>& out) {
  out.clear();
  const std::vector<uint32_t>& backward =
      ctx.plan->backward_neighbors[position];
  const std::vector<VertexId>& cand =
      ctx.candidates->candidates[ctx.plan->order[position]];
  auto accept = [&](VertexId v) {
    ctx.result->stats.search_nodes++;
    if (std::find(partial.begin(), partial.end(), v) != partial.end()) return;
    if (!RestrictionsOk(*ctx.plan, partial, position, v)) return;
    if (ctx.induced) {
      for (uint32_t j : ctx.plan->backward_nonneighbors[position]) {
        if (ctx.data->HasEdge(partial[j], v)) return;
      }
    }
    out.push_back(v);
  };
  if (backward.empty()) {
    for (VertexId v : cand) accept(v);
    return;
  }
  // cand ∩ N(anchor) through the shared adaptive intersection (merge or
  // gallop by skew) instead of per-neighbor binary_search. Members come
  // out ascending, so accept() sees the same vertices in the same order
  // and search_nodes stays bit-identical.
  const VertexId anchor = partial[backward[0]];
  IntersectInto(cand, *ctx.data, anchor, ctx.joined, ctx.scratch);
  for (VertexId v : ctx.joined) {
    bool joins = true;
    for (size_t b = 1; b < backward.size(); ++b) {
      if (!ctx.data->HasEdge(partial[backward[b]], v)) {
        joins = false;
        break;
      }
    }
    if (joins) accept(v);
  }
}

/// DFS completion of one partial match (hybrid fallback).
void DfsFinish(JoinContext& ctx, std::vector<VertexId>& partial,
               uint32_t position) {
  const uint32_t k = static_cast<uint32_t>(ctx.plan->order.size());
  if (position == k) {
    ctx.result->stats.matches++;
    ctx.result->dfs_fallback_matches++;
    return;
  }
  std::vector<VertexId> extensions;
  ExtendPartial(ctx, partial, position, extensions);
  for (VertexId v : extensions) {
    partial.push_back(v);
    DfsFinish(ctx, partial, position + 1);
    partial.pop_back();
  }
}

}  // namespace

BfsMatchResult BfsSubgraphMatch(const Graph& data, const Graph& query,
                                const BfsMatchOptions& options) {
  Timer timer;
  BfsMatchResult result;
  CandidateSets candidates = options.match.nlf_filter
                                 ? NlfFilter(data, query)
                                 : LdfFilter(data, query);
  if (options.match.refine_candidates) {
    RefineCandidates(data, query, &candidates);
  }
  result.plan = BuildPlan(query, candidates, options.match.order,
                          options.match.symmetry_breaking);
  result.stats.candidate_total = candidates.TotalSize();

  JoinContext ctx{&data, &result.plan, &candidates, &result,
                  options.match.induced};
  const uint32_t k = query.NumVertices();

  // Level 0: candidates of the first ordered query vertex.
  std::vector<std::vector<VertexId>> frontier;
  for (VertexId v : candidates.candidates[result.plan.order[0]]) {
    result.stats.search_nodes++;
    frontier.push_back({v});
  }
  uint64_t current_bytes = frontier.size() * PartialBytes(1);
  result.peak_partial_matches = frontier.size();
  result.peak_bytes = current_bytes;

  std::vector<VertexId> extensions;
  for (uint32_t position = 1; position < k; ++position) {
    std::vector<std::vector<VertexId>> next;
    uint64_t next_bytes = 0;
    for (std::vector<VertexId>& partial : frontier) {
      ExtendPartial(ctx, partial, position, extensions);
      for (VertexId v : extensions) {
        const uint64_t bytes = PartialBytes(position + 1);
        if (options.memory_budget_bytes != 0 &&
            current_bytes + next_bytes + bytes >
                options.memory_budget_bytes) {
          switch (options.policy) {
            case MemoryPolicy::kStrict:
              result.budget_exceeded = true;
              result.stats.wall_seconds = timer.ElapsedSeconds();
              return result;
            case MemoryPolicy::kSpill:
              result.spilled_bytes += bytes;
              break;
            case MemoryPolicy::kHybridDfs: {
              std::vector<VertexId> extended = partial;
              extended.push_back(v);
              DfsFinish(ctx, extended, position + 1);
              continue;
            }
          }
        }
        std::vector<VertexId> extended = partial;
        extended.push_back(v);
        if (position + 1 == k) {
          result.stats.matches++;
        } else {
          next_bytes += bytes;
          next.push_back(std::move(extended));
        }
      }
    }
    result.peak_partial_matches =
        std::max<uint64_t>(result.peak_partial_matches,
                           frontier.size() + next.size());
    result.peak_bytes = std::max(result.peak_bytes, current_bytes + next_bytes);
    frontier = std::move(next);
    current_bytes = next_bytes;
    if (frontier.empty() && position + 1 < k) break;
  }
  // Special case: single-vertex query — every candidate is a match.
  if (k == 1) result.stats.matches = frontier.size();

  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gal
