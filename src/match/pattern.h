#ifndef GAL_MATCH_PATTERN_H_
#define GAL_MATCH_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Query patterns are small (possibly labeled) undirected Graphs. This
/// header adds the pattern-level machinery the compilation-based systems
/// (AutoMine / GraphPi / GraphZero) build their plans from: automorphism
/// enumeration and symmetry-breaking restrictions.

/// All automorphisms of `pattern` (vertex permutations preserving labels
/// and adjacency), identity included. Brute force with pruning —
/// patterns in this framework are <= 10 vertices by design.
std::vector<std::vector<VertexId>> Automorphisms(const Graph& pattern);

/// A pairwise restriction "data vertex mapped to `smaller` must have a
/// smaller id than the one mapped to `larger`".
struct SymmetryRestriction {
  VertexId smaller;
  VertexId larger;

  friend bool operator==(const SymmetryRestriction& a,
                         const SymmetryRestriction& b) {
    return a.smaller == b.smaller && a.larger == b.larger;
  }
  friend bool operator<(const SymmetryRestriction& a,
                        const SymmetryRestriction& b) {
    return a.smaller != b.smaller ? a.smaller < b.smaller
                                  : a.larger < b.larger;
  }
};

/// GraphPi/GraphZero-style restriction set: enforcing all returned pairs
/// during search yields each *distinct* embedding exactly once (instead
/// of once per automorphism). Derived by breaking each non-identity
/// automorphism at its first moved vertex.
std::vector<SymmetryRestriction> SymmetryBreakingRestrictions(
    const Graph& pattern);

/// Common test patterns.
Graph TrianglePattern();
Graph PathPattern(uint32_t k);       // path on k vertices
Graph CyclePattern(uint32_t k);      // cycle on k vertices
Graph CliquePattern(uint32_t k);
Graph StarPattern(uint32_t leaves);  // vertex 0 center
/// "Tailed triangle": triangle 0-1-2 plus pendant 3 attached to 0.
Graph TailedTrianglePattern();
/// Diamond: K4 minus the 2-3 edge.
Graph DiamondPattern();

}  // namespace gal

#endif  // GAL_MATCH_PATTERN_H_
