#ifndef GAL_MATCH_BFS_EXECUTOR_H_
#define GAL_MATCH_BFS_EXECUTOR_H_

#include <cstdint>

#include "graph/graph.h"
#include "match/executor.h"
#include "tlag/bfs_engine.h"

namespace gal {

/// BFS (join-style) subgraph matching: partial matches are materialized
/// level by level, one join per plan position — the execution model of
/// the GPU systems the survey covers (GSI, cuTS), which trade memory for
/// coalesced access. The memory policy mirrors the systems' responses
/// to frontier explosion: strict failure, host-memory spill (PBE/VSGM/
/// G2-AIMD partition-and-buffer), or DFS fallback (EGSM hybrid).
struct BfsMatchOptions {
  MatchOptions match;
  uint64_t memory_budget_bytes = 0;  // 0 = unlimited
  MemoryPolicy policy = MemoryPolicy::kSpill;
};

struct BfsMatchResult {
  MatchStats stats;
  uint64_t peak_partial_matches = 0;
  uint64_t peak_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t dfs_fallback_matches = 0;
  bool budget_exceeded = false;
  MatchPlan plan;
};

BfsMatchResult BfsSubgraphMatch(const Graph& data, const Graph& query,
                                const BfsMatchOptions& options = {});

}  // namespace gal

#endif  // GAL_MATCH_BFS_EXECUTOR_H_
