#ifndef GAL_MATCH_PLAN_H_
#define GAL_MATCH_PLAN_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "match/candidates.h"
#include "match/pattern.h"

namespace gal {

/// How the matching order is chosen — the design axis AutoMine, GraphPi
/// and GraphZero optimize with compilation. The executors take a plan,
/// so orders can be compared under an identical enumeration kernel.
enum class OrderStrategy : uint8_t {
  /// Query-vertex id order, made connectivity-valid (naive baseline).
  kById,
  /// Greedy cost-based: start at the rarest candidate set, then always
  /// pick the connected vertex with the most mapped neighbors (maximum
  /// pruning), tie-broken by the smallest candidate set.
  kGreedyCost,
  /// Deliberate pessimization (largest candidate sets first) — the
  /// "wrong order" the compilation papers show can cost orders of
  /// magnitude.
  kWorst,
};

/// An executable matching plan.
struct MatchPlan {
  /// Query vertices in matching order.
  std::vector<VertexId> order;
  /// backward_neighbors[i] = positions j < i whose query vertex is
  /// adjacent to order[i] (the join predicates at step i).
  std::vector<std::vector<uint32_t>> backward_neighbors;
  /// backward_nonneighbors[i] = positions j < i whose query vertex is
  /// NOT adjacent to order[i]; induced matching forbids data edges
  /// between their images.
  std::vector<std::vector<uint32_t>> backward_nonneighbors;
  /// Symmetry restrictions re-expressed in order positions:
  /// restriction (i, j) means mapped[i] < mapped[j] with i, j positions.
  std::vector<std::pair<uint32_t, uint32_t>> order_restrictions;

  std::string ToString() const;
};

/// Builds a plan over the query. Every non-first vertex has at least one
/// backward neighbor (connected patterns only). When
/// `use_symmetry_breaking` is set, SymmetryBreakingRestrictions(query)
/// are folded in so each distinct embedding is produced once.
MatchPlan BuildPlan(const Graph& query, const CandidateSets& candidates,
                    OrderStrategy strategy, bool use_symmetry_breaking);

}  // namespace gal

#endif  // GAL_MATCH_PLAN_H_
