#include "match/plan.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace gal {
namespace {

/// Chooses the next vertex given the already-ordered set. Shared by the
/// strategies; `score` returns the preference (lower wins).
template <typename ScoreFn>
VertexId PickNext(const Graph& query, const std::vector<uint8_t>& placed,
                  const ScoreFn& score) {
  VertexId best = kInvalidVertex;
  double best_score = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < query.NumVertices(); ++u) {
    if (placed[u]) continue;
    // Connectivity: must touch the placed prefix (unless nothing placed).
    bool connected = false;
    for (Graph::NeighborCursor cur = query.OutNeighbors(u); cur.Valid();
         cur.Next()) {
      if (placed[cur.Get()]) {
        connected = true;
        break;
      }
    }
    if (!connected) continue;
    const double s = score(u);
    if (s < best_score) {
      best_score = s;
      best = u;
    }
  }
  return best;
}

}  // namespace

std::string MatchPlan::ToString() const {
  std::ostringstream os;
  os << "order=[";
  for (size_t i = 0; i < order.size(); ++i) {
    os << (i ? "," : "") << order[i];
  }
  os << "] restrictions=" << order_restrictions.size();
  return os.str();
}

MatchPlan BuildPlan(const Graph& query, const CandidateSets& candidates,
                    OrderStrategy strategy, bool use_symmetry_breaking) {
  const VertexId k = query.NumVertices();
  GAL_CHECK(k >= 1);
  GAL_CHECK(candidates.candidates.size() == k);

  MatchPlan plan;
  std::vector<uint8_t> placed(k, 0);

  auto cand_size = [&](VertexId u) {
    return static_cast<double>(candidates.candidates[u].size());
  };
  auto mapped_neighbor_count = [&](VertexId u) {
    uint32_t c = 0;
    query.ForEachOutNeighbor(u, [&](VertexId w) { c += placed[w]; });
    return c;
  };

  // Seed vertex.
  VertexId seed = 0;
  switch (strategy) {
    case OrderStrategy::kById:
      seed = 0;
      break;
    case OrderStrategy::kGreedyCost: {
      for (VertexId u = 1; u < k; ++u) {
        if (cand_size(u) < cand_size(seed)) seed = u;
      }
      break;
    }
    case OrderStrategy::kWorst: {
      for (VertexId u = 1; u < k; ++u) {
        if (cand_size(u) > cand_size(seed)) seed = u;
      }
      break;
    }
  }
  plan.order.push_back(seed);
  placed[seed] = 1;

  while (plan.order.size() < k) {
    VertexId next = kInvalidVertex;
    switch (strategy) {
      case OrderStrategy::kById:
        next = PickNext(query, placed,
                        [](VertexId u) { return static_cast<double>(u); });
        break;
      case OrderStrategy::kGreedyCost:
        next = PickNext(query, placed, [&](VertexId u) {
          // More backward edges first (each is a join predicate that
          // shrinks the local candidate pool), then rarer candidates.
          return -1e9 * mapped_neighbor_count(u) + cand_size(u);
        });
        break;
      case OrderStrategy::kWorst:
        next = PickNext(query, placed, [&](VertexId u) {
          // Fewest predicates, fattest candidate sets: maximal blowup.
          return 1e9 * mapped_neighbor_count(u) - cand_size(u);
        });
        break;
    }
    GAL_CHECK(next != kInvalidVertex)
        << "query pattern must be connected";
    plan.order.push_back(next);
    placed[next] = 1;
  }

  // Backward neighbors per position.
  std::vector<uint32_t> position(k);
  for (uint32_t i = 0; i < k; ++i) position[plan.order[i]] = i;
  plan.backward_neighbors.resize(k);
  plan.backward_nonneighbors.resize(k);
  for (uint32_t i = 0; i < k; ++i) {
    std::vector<uint8_t> adjacent(i, 0);
    query.ForEachOutNeighbor(plan.order[i], [&](VertexId w) {
      if (position[w] < i) {
        plan.backward_neighbors[i].push_back(position[w]);
        adjacent[position[w]] = 1;
      }
    });
    std::sort(plan.backward_neighbors[i].begin(),
              plan.backward_neighbors[i].end());
    for (uint32_t j = 0; j < i; ++j) {
      if (!adjacent[j]) plan.backward_nonneighbors[i].push_back(j);
    }
  }

  if (use_symmetry_breaking) {
    for (const SymmetryRestriction& r : SymmetryBreakingRestrictions(query)) {
      plan.order_restrictions.emplace_back(position[r.smaller],
                                           position[r.larger]);
    }
  }
  return plan;
}

}  // namespace gal
