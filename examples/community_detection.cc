// Community detection via structure analytics (Figure 1, path 3).
//
// A planted-partition social network is mined three ways — k-core
// filtering, densest-subgraph peeling, and γ-quasi-clique search — and
// each result is scored against the planted communities. This is the
// "finding social communities" use case the survey motivates structure
// analytics with, and shows why quasi-cliques (not just cliques) matter:
// real communities are dense but imperfect.
//
// Build & run:  ./build/examples/community_detection

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "tlag/algos/cliques.h"
#include "tlag/algos/quasi_clique.h"

namespace {

/// Fraction of vertex pairs in `group` sharing a planted community.
double Purity(const gal::Graph& g, const std::vector<gal::VertexId>& group) {
  if (group.size() < 2) return 1.0;
  uint64_t same = 0;
  uint64_t pairs = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    for (size_t j = i + 1; j < group.size(); ++j) {
      ++pairs;
      same += (g.LabelOf(group[i]) == g.LabelOf(group[j]));
    }
  }
  return static_cast<double>(same) / static_cast<double>(pairs);
}

}  // namespace

int main() {
  using namespace gal;

  // 8 communities of 40 vertices; dense inside, sparse across.
  // Community 0 is made extra dense (a tight-knit group) so the
  // densest-subgraph method has a distinguished target.
  Graph base = PlantedPartition(/*n=*/320, /*communities=*/8, /*p_in=*/0.3,
                                /*p_out=*/0.008, /*seed=*/7);
  std::vector<Edge> edges = base.CollectEdges();
  Rng rng(11);
  for (VertexId u = 0; u < 320; u += 8) {       // members of community 0
    for (VertexId v = u + 8; v < 320; v += 8) {
      if (rng.Bernoulli(0.5)) edges.push_back({u, v});
    }
  }
  Graph g = std::move(Graph::FromEdges(320, edges, {}).value());
  GAL_CHECK_OK(g.SetLabels(std::vector<Label>(base.labels())));
  std::printf("social network: %s, 8 planted communities\n",
              g.ToString().c_str());

  // --- k-core: strip the sparse periphery ------------------------------
  DegeneracyResult degen = DegeneracyOrder(g);
  std::vector<VertexId> core = KCore(g, degen.degeneracy / 2);
  std::printf("k-core (k=%u): kept %zu/%u vertices, purity of pairs %.2f\n",
              degen.degeneracy / 2, core.size(), g.NumVertices(),
              Purity(g, core));

  // --- densest subgraph: the single strongest community ----------------
  DensestSubgraphResult densest = DensestSubgraphPeel(g);
  std::printf("densest subgraph: %zu vertices, density %.2f, purity %.2f\n",
              densest.vertices.size(), densest.density,
              Purity(g, densest.vertices));

  // --- maximal cliques: perfect but fragmented -------------------------
  MaximalCliqueOptions clique_options;
  clique_options.min_size = 5;
  MaximalCliqueResult cliques =
      MaximalCliques(g, clique_options, /*collect=*/true);
  double clique_purity = 0.0;
  for (const auto& c : cliques.cliques) clique_purity += Purity(g, c);
  if (!cliques.cliques.empty()) clique_purity /= cliques.cliques.size();
  std::printf("maximal cliques (>=5): %llu found, largest %u, "
              "mean purity %.2f\n",
              static_cast<unsigned long long>(cliques.count), cliques.largest,
              clique_purity);

  // --- quasi-cliques: dense-but-imperfect groups -----------------------
  QuasiCliqueOptions qc_options;
  qc_options.gamma = 0.75;
  qc_options.min_size = 5;
  qc_options.max_size = 6;
  QuasiCliqueResult qc = FindQuasiCliques(g, qc_options);
  double qc_purity = 0.0;
  size_t qc_larger_than_max_clique = 0;
  for (const auto& s : qc.quasi_cliques) {
    qc_purity += Purity(g, s);
    qc_larger_than_max_clique += (s.size() > cliques.largest);
  }
  if (!qc.quasi_cliques.empty()) qc_purity /= qc.quasi_cliques.size();
  std::printf("quasi-cliques (gamma=0.75, size 5-6): %zu found, "
              "mean purity %.2f, %zu exceed the largest clique\n",
              qc.quasi_cliques.size(), qc_purity,
              qc_larger_than_max_clique);
  std::printf("  search: %llu sets examined, %llu branches pruned, "
              "%llu tasks stolen\n",
              static_cast<unsigned long long>(qc.sets_examined),
              static_cast<unsigned long long>(qc.pruned_branches),
              static_cast<unsigned long long>(qc.task_stats.steals));
  return 0;
}
