// Quickstart: the GAL library in five minutes.
//
// Generates a scale-free graph, then walks the three system families the
// library implements: think-like-a-vertex analytics (PageRank / WCC),
// think-like-a-task subgraph search (triangles / cliques), and a small
// GNN training run — the full pipeline of the survey's Figure 1.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "gnn/dataset.h"
#include "graph/generators.h"
#include "nn/gcn.h"
#include "tensor/sparse.h"
#include "tlag/algos/cliques.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/wcc.h"

int main() {
  using namespace gal;

  // --- 1. A graph -----------------------------------------------------
  Graph g = Rmat(/*scale=*/12, /*edge_factor=*/8, /*seed=*/42);
  std::printf("graph: %s\n", g.ToString().c_str());

  // --- 2. Vertex analytics (TLAV engine, simulated 4-worker cluster) ---
  PageRankOptions pr_options;
  pr_options.iterations = 15;
  PageRankResult pr = PageRank(g, pr_options);
  VertexId top = 0;
  for (VertexId v = 1; v < g.NumVertices(); ++v) {
    if (pr.ranks[v] > pr.ranks[top]) top = v;
  }
  std::printf("pagerank: top vertex %u (rank %.5f), %u supersteps, "
              "%llu messages\n",
              top, pr.ranks[top], pr.stats.supersteps,
              static_cast<unsigned long long>(pr.stats.total_messages));

  WccResult wcc = Wcc(g);
  std::printf("wcc: %u components in %u supersteps\n", wcc.num_components,
              wcc.stats.supersteps);

  // --- 3. Subgraph search (think-like-a-task engine) -------------------
  TriangleCountResult tri = TaskTriangleCount(g);
  std::printf("triangles: %llu (%.1f ms, %llu steals)\n",
              static_cast<unsigned long long>(tri.triangles),
              tri.wall_seconds * 1e3,
              static_cast<unsigned long long>(tri.task_stats.steals));

  MaximalCliqueOptions clique_options;
  clique_options.min_size = 4;
  MaximalCliqueResult cliques = MaximalCliques(g, clique_options);
  std::printf("maximal cliques (size>=4): %llu, largest %u\n",
              static_cast<unsigned long long>(cliques.count),
              cliques.largest);

  // --- 4. Graph machine learning ---------------------------------------
  PlantedDatasetOptions ds_options;
  ds_options.num_vertices = 600;
  ds_options.num_classes = 4;
  NodeClassificationDataset ds = MakePlantedDataset(ds_options);
  SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kSymmetric);
  AggregateFn aggregate = ExactAggregator(&adj);
  GcnConfig model_config;
  model_config.dims = {ds.features.cols(), 16, ds.num_classes};
  GcnModel model(model_config);
  TrainConfig train_config;
  train_config.epochs = 40;
  TrainReport report =
      TrainNodeClassifier(model, ds.features, ds.labels, ds.train_mask,
                          ds.test_mask, aggregate, train_config);
  std::printf("gcn: test accuracy %.3f after %u epochs (loss %.3f -> %.3f)\n",
              report.final_test_accuracy, train_config.epochs,
              report.epochs.front().loss, report.epochs.back().loss);
  return 0;
}
