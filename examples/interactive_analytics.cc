// Interactive online analytics: the query-serving side of the survey's
// system landscape. A resident social graph answers two kinds of
// online workloads concurrently:
//   - point queries on the TLAV engine with Quegel-style
//     superstep-sharing (batched BFS distance queries), and
//   - subgraph pattern queries on the think-like-a-task engine through
//     the G-thinkerQ-style online server.
//
// Build & run:  ./build/examples/interactive_analytics

#include <cstdio>

#include "common/timer.h"
#include "graph/generators.h"
#include "match/online.h"
#include "match/pattern.h"
#include "tlav/algos/batched_queries.h"
#include "tlav/algos/traversal.h"

int main() {
  using namespace gal;

  Graph g = Rmat(10, 6, 21);
  std::printf("resident graph: %s\n\n", g.ToString().c_str());

  // --- Point queries: who is close to whom? ---------------------------
  std::vector<VertexId> sources;
  for (VertexId s = 0; s < 32; ++s) sources.push_back(s * 97 % g.NumVertices());

  Timer batched_timer;
  BatchedBfsResult batched = BatchedBfsQueries(g, sources);
  const double batched_ms = batched_timer.ElapsedMillis();
  Timer sequential_timer;
  BatchedBfsResult sequential = SequentialBfsQueries(g, sources);
  const double sequential_ms = sequential_timer.ElapsedMillis();

  std::printf("32 BFS distance queries (Quegel superstep-sharing):\n");
  std::printf("  batched:    %u supersteps, %.1f ms\n",
              batched.stats.supersteps, batched_ms);
  std::printf("  sequential: %u supersteps, %.1f ms\n",
              sequential.stats.supersteps, sequential_ms);
  std::printf("  barrier amortization: %.1fx fewer supersteps\n\n",
              static_cast<double>(sequential.stats.supersteps) /
                  std::max(1u, batched.stats.supersteps));

  // Spot answers.
  for (uint32_t q = 0; q < 3; ++q) {
    uint64_t reached = 0;
    for (uint32_t d : batched.distances[q]) reached += (d != kUnreachable);
    std::printf("  query %u (source %u): %llu vertices reachable\n", q,
                sources[q], static_cast<unsigned long long>(reached));
  }

  // --- Pattern queries: concurrent motif lookups ------------------------
  std::printf("\nconcurrent subgraph queries (G-thinkerQ-style server):\n");
  OnlineQueryServer server(&g, /*num_threads=*/2);
  MatchOptions options;
  options.symmetry_breaking = true;
  std::vector<std::pair<const char*, Graph>> queries;
  queries.emplace_back("triangle", TrianglePattern());
  queries.emplace_back("4-cycle", CyclePattern(4));
  queries.emplace_back("diamond", DiamondPattern());
  queries.emplace_back("tailed-triangle", TailedTrianglePattern());

  std::vector<std::future<OnlineQueryServer::QueryOutcome>> futures;
  for (auto& [name, pattern] : queries) {
    futures.push_back(server.Submit(pattern, options));
  }
  server.Drain();
  for (size_t i = 0; i < queries.size(); ++i) {
    OnlineQueryServer::QueryOutcome outcome = futures[i].get();
    std::printf("  %-16s %12llu instances   latency %7.1f ms\n",
                queries[i].first,
                static_cast<unsigned long long>(outcome.stats.matches),
                outcome.latency_seconds * 1e3);
  }
  std::printf("\n%llu queries served against one resident graph — the "
              "interactive regime the survey's online systems target.\n",
              static_cast<unsigned long long>(server.queries_completed() +
                                              sources.size()));
  return 0;
}
