// Fraud-ring detection with a distributed GNN (Figure 1, paths 2 and 4):
// the complete analytics -> ML pipeline. Structure analytics extracts
// per-account features (degree, clustering, core number, PageRank),
// which are concatenated with transaction features and fed to a GNN
// trained on a simulated 4-worker cluster with neighborhood sampling —
// the recommender/risk-system shape the survey's industrial systems
// (AliGraph, ByteGNN) were built for.
//
// Build & run:  ./build/examples/fraud_detection_gnn

#include <cstdio>

#include "dist/dist_gcn.h"
#include "gnn/dataset.h"
#include "gnn/features.h"
#include "gnn/sage.h"

int main() {
  using namespace gal;

  // Accounts form communities; fraud rings are the densest class.
  PlantedDatasetOptions data_options;
  data_options.num_vertices = 800;
  data_options.num_classes = 2;  // legit vs fraud-ring membership
  data_options.p_in = 0.05;
  data_options.p_out = 0.004;
  data_options.feature_dim = 12;
  data_options.noise = 2.5;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  std::printf("account graph: %s\n", ds.graph.ToString().c_str());

  // --- Stage 1: structure analytics as features -------------------------
  Matrix structural = StructuralFeatures(ds.graph);
  Matrix combined(ds.features.rows(), ds.features.cols() + structural.cols());
  for (uint32_t v = 0; v < combined.rows(); ++v) {
    for (uint32_t j = 0; j < ds.features.cols(); ++j) {
      combined.at(v, j) = ds.features.at(v, j);
    }
    for (uint32_t j = 0; j < structural.cols(); ++j) {
      combined.at(v, ds.features.cols() + j) = structural.at(v, j);
    }
  }
  ds.features = std::move(combined);
  std::printf("features: %u transaction + %u structural columns\n",
              data_options.feature_dim, structural.cols());

  // --- Stage 2a: sampled mini-batch training (single machine) -----------
  SageConfig sage;
  sage.fanouts = {10, 10};
  sage.epochs = 6;
  SageReport mb = TrainSageMinibatch(ds, sage);
  std::printf("minibatch GraphSAGE (fanout 10): accuracy %.3f, gathered "
              "%.2f MB of features\n",
              mb.final_test_accuracy,
              static_cast<double>(mb.feature_bytes_gathered) / 1e6);

  // --- Stage 2b: distributed full-graph training -------------------------
  DistGcnConfig dist;
  dist.num_workers = 4;
  dist.partition = PartitionScheme::kBfsVoronoi;  // ByteGNN-style blocks
  dist.sync = SyncMode::kSancus;                  // skip stable broadcasts
  dist.quantization = Quantization::kInt8;        // compress the halo
  dist.error_compensation = true;
  dist.epochs = 40;
  DistGcnReport report = TrainDistGcn(ds, dist);
  std::printf("distributed GCN (4 workers, %s partition, %s sync, %s "
              "messages):\n",
              PartitionSchemeName(dist.partition), SyncModeName(dist.sync),
              QuantizationName(dist.quantization));
  std::printf("  accuracy %.3f | comm %.2f MB | %llu broadcasts skipped | "
              "edge cut %llu\n",
              report.final_test_accuracy,
              static_cast<double>(report.comm_bytes) / 1e6,
              static_cast<unsigned long long>(report.broadcasts_skipped),
              static_cast<unsigned long long>(report.edge_cut));
  std::printf("  simulated epoch time %.2f ms (compute %.2f + comm %.2f)\n",
              report.simulated_epoch_seconds * 1e3 / dist.epochs,
              report.compute_seconds * 1e3 / dist.epochs,
              report.comm_seconds * 1e3 / dist.epochs);
  return 0;
}
