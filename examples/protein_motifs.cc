// Motif search in a protein-interaction-style network (Figure 1,
// path 3 + 4): labeled subgraph matching finds instances of known
// functional motifs, FSM discovers recurring patterns, and the online
// query server answers interactive motif queries — the bioinformatics
// workload ("finding functional groups") the survey cites.
//
// Build & run:  ./build/examples/protein_motifs

#include <cstdio>

#include "fsm/canonical.h"
#include "fsm/fsm.h"
#include "graph/generators.h"
#include "match/executor.h"
#include "match/online.h"
#include "match/pattern.h"

int main() {
  using namespace gal;

  // A synthetic interactome: power-law topology with 5 protein families
  // (labels 0..4 standing in for kinases, phosphatases, ...).
  Graph interactome = WithRandomLabels(Rmat(11, 6, 3), 5, 9);
  std::printf("interactome: %s, 5 protein families\n",
              interactome.ToString().c_str());

  // --- Known-motif search: a labeled feed-forward-like triangle ---------
  Graph motif = TrianglePattern();
  GAL_CHECK_OK(motif.SetLabels({0, 1, 2}));
  MatchOptions options;
  options.symmetry_breaking = true;  // distinct instances, not embeddings
  MatchResult hits = SubgraphMatch(interactome, motif, options);
  std::printf("labeled triangle motif (0-1-2): %llu distinct instances, "
              "%llu search nodes, order %s\n",
              static_cast<unsigned long long>(hits.stats.matches),
              static_cast<unsigned long long>(hits.stats.search_nodes),
              hits.plan.ToString().c_str());

  // --- Motif discovery: frequent subgraph mining ------------------------
  SingleGraphFsmOptions fsm_options;
  fsm_options.min_support = 40;  // MNI support
  fsm_options.max_edges = 3;
  SingleGraphFsmResult fsm = MineSingleGraph(interactome, fsm_options);
  std::printf("FSM (MNI >= %u, <= %u edges): %zu frequent patterns, "
              "%llu support evaluations, %llu existence checks\n",
              fsm_options.min_support, fsm_options.max_edges,
              fsm.patterns.size(),
              static_cast<unsigned long long>(fsm.stats.patterns_evaluated),
              static_cast<unsigned long long>(fsm.stats.existence_checks));
  for (size_t i = 0; i < fsm.patterns.size() && i < 5; ++i) {
    const FrequentPattern& p = fsm.patterns[i];
    std::printf("  pattern %zu: %u vertices / %llu edges, support %u, "
                "code %s\n",
                i, p.pattern.NumVertices(),
                static_cast<unsigned long long>(p.pattern.NumEdges()),
                p.support, CanonicalCode(p.pattern).c_str());
  }

  // --- Interactive motif queries (G-thinkerQ-style server) --------------
  OnlineQueryServer server(&interactome, /*num_threads=*/4);
  std::vector<std::future<OnlineQueryServer::QueryOutcome>> futures;
  std::vector<const char*> names = {"triangle", "square", "star-3",
                                    "tailed-triangle"};
  futures.push_back(server.Submit(TrianglePattern(), options));
  futures.push_back(server.Submit(CyclePattern(4), options));
  futures.push_back(server.Submit(StarPattern(3), options));
  futures.push_back(server.Submit(TailedTrianglePattern(), options));
  server.Drain();
  std::printf("online query server (4 concurrent clients):\n");
  for (size_t i = 0; i < futures.size(); ++i) {
    OnlineQueryServer::QueryOutcome outcome = futures[i].get();
    std::printf("  %-16s %10llu instances, latency %.2f ms\n", names[i],
                static_cast<unsigned long long>(outcome.stats.matches),
                outcome.latency_seconds * 1e3);
  }
  return 0;
}
